/**
 * @file
 * Cache-line contention model used by the simulation engine.
 *
 * Every synchronization variable is assigned a SimLine that tracks an
 * exclusive owner, the set of sharers, and the virtual time at which
 * the line next becomes available.  Atomic RMWs serialize on the line
 * (back-to-back contenders each pay a transfer), which is precisely the
 * hardware behavior that makes a single fetch&add cheaper than a
 * lock/unlock pair around the same update.
 *
 * An access is priced from the machine's (op x coherence-state) table:
 * the requester sees the line as Owned (exclusive), Shared (holds a
 * copy; an RMW is an in-place upgrade), or Invalid — split into
 * invalid-local-domain and invalid-remote-domain by where the nearest
 * holder sits in the machine topology, with per-hop distance cycles
 * added for cross-domain supplies and an optional flat SMT-sibling
 * price when the holder shares the requester's core.  A line nobody
 * holds is fetched from memory at the invalid-remote price.  Each
 * transfer is also bucketed by distance traveled (TransferScope) for
 * the characterization tables.
 */

#ifndef SPLASH_SIM_LINE_MODEL_H
#define SPLASH_SIM_LINE_MODEL_H

#include <array>
#include <cstdint>
#include <vector>

#include "core/types.h"
#include "sim/machine.h"

namespace splash {

/**
 * Set of thread ids sharing a line.  The first 64 tids live in an
 * inline word (the overwhelmingly common case — and the only case the
 * old bitmask supported, silently aliasing tid 64 onto tid 0); larger
 * machines (t3-512) spill into overflow words allocated on first use.
 */
class SharerSet
{
  public:
    bool
    contains(int tid) const
    {
        if (tid < 64)
            return (low_ >> tid) & 1ULL;
        const std::size_t word = highWord(tid);
        return word < high_.size() &&
               ((high_[word] >> (tid & 63)) & 1ULL);
    }

    void
    add(int tid)
    {
        if (tid < 64) {
            low_ |= 1ULL << tid;
            return;
        }
        const std::size_t word = highWord(tid);
        if (word >= high_.size())
            high_.resize(word + 1, 0);
        high_[word] |= 1ULL << (tid & 63);
    }

    /** Collapse to the single member @p tid. */
    void
    assign(int tid)
    {
        low_ = 0;
        for (auto& word : high_)
            word = 0;
        add(tid);
    }

    bool
    empty() const
    {
        if (low_ != 0)
            return false;
        for (const auto word : high_)
            if (word != 0)
                return false;
        return true;
    }

    bool
    soleMember(int tid) const
    {
        return contains(tid) && count() == 1;
    }

    int
    count() const
    {
        int n = __builtin_popcountll(low_);
        for (const auto word : high_)
            n += __builtin_popcountll(word);
        return n;
    }

    /** Invoke @p fn(tid) for every member, ascending. */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        forEachBit(low_, 0, fn);
        for (std::size_t i = 0; i < high_.size(); ++i)
            forEachBit(high_[i], 64 * static_cast<int>(i + 1), fn);
    }

  private:
    static std::size_t
    highWord(int tid)
    {
        return static_cast<std::size_t>(tid >> 6) - 1;
    }

    template <typename Fn>
    static void
    forEachBit(std::uint64_t word, int base, Fn&& fn)
    {
        while (word != 0) {
            fn(base + __builtin_ctzll(word));
            word &= word - 1;
        }
    }

    std::uint64_t low_ = 0;
    std::vector<std::uint64_t> high_;
};

/** State of one modeled cache line holding a sync variable. */
class SimLine
{
  public:
    static constexpr int kNoOwner = -1;

    /**
     * Perform an atomic RMW of class @p op by thread @p tid arriving
     * at @p now.
     * @return completion time (line held exclusively by tid).
     */
    VTime
    rmw(int tid, VTime now, const MachineProfile& prof, AtomicOp op)
    {
        const VTime start = now > freeAt_ ? now : freeAt_;
        VTime cost;
        if (owner_ == tid && sharers_.soleMember(tid)) {
            cost = prof.cost(op, CoherenceState::Owned);
        } else if (sharers_.contains(tid)) {
            // In-place upgrade: invalidate the other copies.  Reach
            // (and extra hop cycles) follow the farthest other sharer.
            const Reach reach = upgradeReach(tid, prof.topology);
            cost = prof.cost(op, CoherenceState::Shared) + reach.extra;
            recordTransfer(reach.scope);
        } else {
            const Reach reach = supplyReach(tid, prof.topology);
            cost = reach.override >= 0
                       ? static_cast<VTime>(reach.override)
                       : prof.cost(op, reach.state) + reach.extra;
            recordTransfer(reach.scope);
        }
        owner_ = tid;
        sharers_.assign(tid);
        freeAt_ = start + cost;
        ++rmwCount_;
        return freeAt_;
    }

    /**
     * Perform a load by thread @p tid arriving at @p now.  Loads by
     * existing sharers hit locally; a new sharer pays a transfer and a
     * short occupancy window, after which the line is shared.
     */
    VTime
    load(int tid, VTime now, const MachineProfile& prof)
    {
        if (sharers_.contains(tid)) {
            const CoherenceState state =
                owner_ == tid && sharers_.soleMember(tid)
                    ? CoherenceState::Owned
                    : CoherenceState::Shared;
            return now + prof.cost(AtomicOp::Load, state);
        }
        const VTime start = now > freeAt_ ? now : freeAt_;
        const Reach reach = supplyReach(tid, prof.topology);
        const VTime cost =
            reach.override >= 0
                ? static_cast<VTime>(reach.override)
                : prof.cost(AtomicOp::Load, reach.state) + reach.extra;
        sharers_.add(tid);
        owner_ = kNoOwner;
        freeAt_ = start + prof.loadOccupancy;
        recordTransfer(reach.scope);
        return start + cost;
    }

    /** Time at which the line is next available. */
    VTime freeAt() const { return freeAt_; }

    /** Dynamic counts, for the characterization tables. */
    std::uint64_t rmwCount() const { return rmwCount_; }
    std::uint64_t transferCount() const { return transferCount_; }
    std::uint64_t
    transferCount(TransferScope scope) const
    {
        return scopeCount_[static_cast<int>(scope)];
    }

  private:
    struct Reach
    {
        CoherenceState state;
        TransferScope scope;
        VTime extra = 0; ///< added domain-distance cycles
        /** When >= 0: flat price replacing the table lookup. */
        std::int64_t override = -1;
    };

    /**
     * Where a missing line is supplied from, as seen by non-sharer
     * @p tid: the nearest current holder wins (SMT sibling, then same
     * domain, then closest domain); a line nobody holds comes from
     * memory at the invalid-remote price.
     */
    Reach
    supplyReach(int tid, const MachineTopology& topo) const
    {
        if (sharers_.empty())
            return {CoherenceState::InvalidRemote,
                    TransferScope::Memory, 0};
        const int reqCore = topo.coreOf(tid);
        const int reqDomain = topo.domainOf(tid);
        bool sameCore = false, sameDomain = false;
        int minHop = topo.domains;
        sharers_.forEach([&](int other) {
            if (topo.coreOf(other) == reqCore)
                sameCore = true;
            const int hop = topo.domainOf(other) - reqDomain;
            const int dist = hop < 0 ? -hop : hop;
            if (dist == 0)
                sameDomain = true;
            else if (dist < minHop)
                minHop = dist;
        });
        if (sameCore) {
            // A sibling supply through the shared L1 replaces the
            // invalid-state price entirely when the shortcut is on.
            return {CoherenceState::InvalidLocal,
                    TransferScope::SameCore, 0,
                    topo.smtSiblingTransferCycles};
        }
        if (sameDomain)
            return {CoherenceState::InvalidLocal,
                    TransferScope::SameDomain, 0};
        return {CoherenceState::InvalidRemote,
                TransferScope::CrossDomain,
                topo.domainDistanceCycles[minHop]};
    }

    /** Invalidation reach of a Shared->Owned upgrade by sharer tid. */
    Reach
    upgradeReach(int tid, const MachineTopology& topo) const
    {
        const int reqCore = topo.coreOf(tid);
        const int reqDomain = topo.domainOf(tid);
        bool outsideCore = false, outsideDomain = false;
        int maxHop = 0;
        sharers_.forEach([&](int other) {
            if (other == tid)
                return;
            if (topo.coreOf(other) != reqCore)
                outsideCore = true;
            const int hop = topo.domainOf(other) - reqDomain;
            const int dist = hop < 0 ? -hop : hop;
            if (dist > 0)
                outsideDomain = true;
            if (dist > maxHop)
                maxHop = dist;
        });
        if (outsideDomain)
            return {CoherenceState::Shared, TransferScope::CrossDomain,
                    topo.domainDistanceCycles[maxHop]};
        if (outsideCore)
            return {CoherenceState::Shared, TransferScope::SameDomain,
                    0};
        // Sole sharer (or only SMT siblings): silent in-place upgrade.
        return {CoherenceState::Shared, TransferScope::SameCore, 0};
    }

    void
    recordTransfer(TransferScope scope)
    {
        ++transferCount_;
        ++scopeCount_[static_cast<int>(scope)];
    }

    int owner_ = kNoOwner;
    SharerSet sharers_;
    VTime freeAt_ = 0;
    std::uint64_t rmwCount_ = 0;
    std::uint64_t transferCount_ = 0;
    std::array<std::uint64_t, kNumTransferScopes> scopeCount_{};
};

} // namespace splash

#endif // SPLASH_SIM_LINE_MODEL_H
