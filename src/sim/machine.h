/**
 * @file
 * Data-driven machine cost profiles for the virtual-time simulation
 * engine.
 *
 * A profile captures, in cycles, what differentiates lock-based from
 * lock-free synchronization on a real multicore — and it does so per
 * *coherence state*, not per construct: Schweizer et al. ("Evaluating
 * the Cost of Atomic Operations on Modern Architectures", PAPERS.md)
 * measured that a CAS on an Modified-owned line, a Shared line needing
 * an upgrade, and an Invalid line needing a transfer differ by an order
 * of magnitude, and differ again across NUMA distance.  The profile is
 * therefore:
 *
 *  - a topology: domains (sockets/CCX groups) x cores x SMT threads
 *    per core, with per-domain-distance transfer penalties and an
 *    optional cheap SMT-sibling transfer (the SPARC T3 regime);
 *  - an atomic cost table keyed by (op class: load/store/CAS/FAA/SWP)
 *    x (coherence state: owned / shared / invalid-local-domain /
 *    invalid-remote-domain);
 *  - an atomic *mode*: AMO machines retry failed CAS at
 *    casRetryCycles, LL/SC machines (RISC-V LR/SC) pay the distinct —
 *    typically much larger — llscRetryCycles per failed attempt;
 *  - scheduler costs: futex park/wake penalties paid by sleeping
 *    mutexes and condition-variable barriers.
 *
 * Profiles are data, not code: built-ins (epyc64, icelake64, t3-512,
 * sg2044, test4) are embedded copies of the JSON files under machines/
 * in the source tree, parsed by the same strict splash4-machine-v1 loader
 * that reads user-supplied files, so `--machine=path/to/host.json`
 * adds a machine without recompiling (docs/MACHINES.md; the
 * tools/calibrate binary emits such a file from measurements of the
 * host).  Absolute values are plausible magnitudes, not claims; the
 * experiments rely on their relative ordering.
 */

#ifndef SPLASH_SIM_MACHINE_H
#define SPLASH_SIM_MACHINE_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace splash {

/** Schema identifier accepted by the profile loader. */
inline constexpr const char* kMachineSchema = "splash4-machine-v1";

/** Atomic operation classes priced by the cost table. */
enum class AtomicOp
{
    Load,  ///< acquire load of a sync variable
    Store, ///< release store (sense flip, Chase-Lev bottom)
    Cas,   ///< compare&swap (locks, Treiber stack, CAS reductions)
    Faa,   ///< fetch&add (tickets, barrier arrival counters)
    Swp,   ///< atomic exchange (flag set)
};
inline constexpr int kNumAtomicOps = 5;

/** Coherence state of the accessed line, from the requester's side. */
enum class CoherenceState
{
    Owned,         ///< exclusively held by the requester (M/E)
    Shared,        ///< requester holds a shared copy (upgrade on RMW)
    InvalidLocal,  ///< held elsewhere in the requester's domain
    InvalidRemote, ///< held in another domain (or only in memory)
};
inline constexpr int kNumCoherenceStates = 4;

/** Distance a modeled line transfer traveled (characterization). */
enum class TransferScope
{
    SameCore,    ///< SMT-sibling supply or in-place upgrade
    SameDomain,  ///< core-to-core within one domain
    CrossDomain, ///< domain-to-domain (NUMA/interconnect hop)
    Memory,      ///< first touch: fetched from memory
};
inline constexpr int kNumTransferScopes = 4;

const char* toString(AtomicOp op);
const char* toString(CoherenceState state);
const char* toString(TransferScope scope);

/**
 * Physical layout: domains x cores x SMT.  Simulated thread tids map
 * onto hardware threads compactly (SMT-first, then cores, then
 * domains), mirroring a packed OS pinning: tids [0, smtPerCore) share
 * core 0 of domain 0.
 */
struct MachineTopology
{
    int domains = 1;        ///< sockets / NUMA domains / CCX groups
    int coresPerDomain = 1; ///< physical cores per domain
    int smtPerCore = 1;     ///< hardware threads per core
    /**
     * Extra transfer cycles by inter-domain hop distance; index is
     * |domainA - domainB|, entry 0 (same domain) must be 0.  Length
     * equals `domains`, so every possible hop is priced explicitly.
     */
    std::vector<VTime> domainDistanceCycles{0};
    /**
     * When >= 0: a line supplied by an SMT sibling (same core) costs
     * this flat amount instead of the table's invalid-state price —
     * heavy-SMT parts (SPARC T3) share L1 between siblings.  -1
     * disables the shortcut.
     */
    std::int64_t smtSiblingTransferCycles = -1;

    int totalThreads() const
    {
        return domains * coresPerDomain * smtPerCore;
    }
    int coreOf(int tid) const { return tid / smtPerCore; }
    int domainOf(int tid) const
    {
        return coreOf(tid) / coresPerDomain;
    }
};

/** Cost model parameters (all latencies in cycles). */
struct MachineProfile
{
    std::string name;
    std::string description;
    std::string isa; ///< informational ("x86-64", "sparc-v9", ...)

    MachineTopology topology;

    /** cycles[op][state]; see cost(). */
    std::array<std::array<VTime, kNumCoherenceStates>, kNumAtomicOps>
        atomicCycles{};

    /**
     * Atomic mode.  false = AMO (x86/SPARC-style single-instruction
     * RMW; failed CAS costs casRetryCycles).  true = LL/SC (RISC-V
     * LR/SC; a failed CAS loses its reservation and pays the distinct
     * llscRetryCycles round trip).  FAA/SWP are single AMOs on both.
     */
    bool llscMode = false;
    VTime casRetryCycles = 30;  ///< extra cost per failed CAS (AMO)
    VTime llscRetryCycles = 0;  ///< extra cost per failed SC (LL/SC)

    VTime workUnitCycles = 1; ///< cycles per ctx.work() unit
    VTime loadOccupancy = 10; ///< serialization window of a load miss

    VTime parkCycles = 1000;         ///< going to sleep on a futex
    VTime wakeCyclesPerWaiter = 250; ///< waker-side cost per wakeup
    VTime wakeLatencyCycles = 1200;  ///< sleep-to-running latency
    VTime spinResumeCycles = 40;     ///< spinner notices flipped line

    /** Critical-section body cost for locked counters/sums. */
    VTime criticalOpCycles = 15;

    /**
     * FNV-1a of the canonical serialization: two profiles hash equal
     * iff every cost and topology field matches.  Job ids cover this
     * (not the name), so cached results cannot alias across profiles.
     */
    std::string contentHash;

    /** Simulated threads this machine can run (= hardware threads). */
    int maxThreads() const { return topology.totalThreads(); }

    /** Table lookup (no topology adjustments; see SimLine). */
    VTime
    cost(AtomicOp op, CoherenceState state) const
    {
        return atomicCycles[static_cast<int>(op)]
                           [static_cast<int>(state)];
    }

    /** Cost of one failed attempt of @p op's retry loop. */
    VTime
    retryCycles(AtomicOp op) const
    {
        return (llscMode && op == AtomicOp::Cas) ? llscRetryCycles
                                                 : casRetryCycles;
    }
};

/**
 * Resolve a machine spec: a built-in name (`epyc64`) or a path to a
 * splash4-machine-v1 JSON file (anything containing '/' or ending in
 * `.json`).  Loaded files are cached by spec; fatal on unknown names,
 * unreadable files, or validation failures.
 */
const MachineProfile& machineProfile(const std::string& spec);

/** Names of all built-in profiles. */
std::vector<std::string> machineProfileNames();

/**
 * Parse and validate splash4-machine-v1 JSON text.  On success fills
 * @p out (including contentHash) and returns true; otherwise returns
 * false with a one-line reason in @p error.  @p origin names the
 * source in error messages.
 */
bool parseMachineProfile(const std::string& text,
                         const std::string& origin, MachineProfile& out,
                         std::string& error);

/** Serialize @p profile as splash4-machine-v1 JSON (loader-clean). */
std::string machineProfileToJson(const MachineProfile& profile);

/** Canonical one-line text covering every result-shaping field. */
std::string machineProfileCanonicalText(const MachineProfile& profile);

} // namespace splash

#endif // SPLASH_SIM_MACHINE_H
