/**
 * @file
 * Machine cost profiles for the virtual-time simulation engine.
 *
 * A profile captures, in cycles, the costs that differentiate lock-based
 * from lock-free synchronization on a real multicore: cache-line
 * transfer latency between cores, local RMW latency, and the
 * futex-style park/wake penalties paid by sleeping mutexes and
 * condition-variable barriers.  Two profiles mirror the paper's
 * evaluation targets: a 64-core AMD EPYC 7702 ("epyc64", chiplet-based,
 * expensive cross-CCX transfers, heavyweight OS wakeups) and a gem5-20
 * simulated 64-core Intel Ice Lake mesh ("icelake64", lower uniform
 * latencies).  Absolute values are plausible magnitudes, not calibrated
 * measurements; the experiments only rely on their relative ordering.
 */

#ifndef SPLASH_SIM_MACHINE_H
#define SPLASH_SIM_MACHINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace splash {

/** Cost model parameters (all latencies in cycles). */
struct MachineProfile
{
    std::string name;
    int maxThreads = 64;

    VTime workUnitCycles = 1;    ///< cycles per ctx.work() unit
    VTime loadLocalCycles = 4;   ///< load hitting the local cache
    VTime loadRemoteCycles = 60; ///< load that must fetch the line
    VTime loadOccupancy = 10;    ///< serialization window of a miss
    VTime rmwLocalCycles = 20;   ///< RMW on an owned line
    VTime rmwRemoteCycles = 100; ///< RMW needing a line transfer
    VTime casRetryCycles = 30;   ///< extra cost per failed CAS attempt

    VTime parkCycles = 1000;     ///< going to sleep on a futex
    VTime wakeCyclesPerWaiter = 250; ///< waker-side cost per wakeup
    VTime wakeLatencyCycles = 1200;  ///< sleep-to-running latency
    VTime spinResumeCycles = 40;     ///< spinner notices the flipped line

    /** Critical-section body cost for locked counters/sums. */
    VTime criticalOpCycles = 15;
};

/** Look up a profile by name (fatal if unknown). */
const MachineProfile& machineProfile(const std::string& name);

/** Names of all built-in profiles. */
std::vector<std::string> machineProfileNames();

} // namespace splash

#endif // SPLASH_SIM_MACHINE_H
