#include "sim/machine.h"

#include "util/log.h"

namespace splash {

namespace {

std::vector<MachineProfile>
buildProfiles()
{
    std::vector<MachineProfile> profiles;

    // AMD EPYC 7702: 64 cores across 16 CCXs on 8 chiplets. Cross-CCX
    // line transfers bounce through the IO die; futex wakeups traverse
    // the OS scheduler.  This is the "real hardware" target where the
    // paper reports the largest Splash-4 gains (52% at 64 threads).
    {
        MachineProfile p;
        p.name = "epyc64";
        p.maxThreads = 64;
        p.workUnitCycles = 12;
        p.loadLocalCycles = 4;
        p.loadRemoteCycles = 110;
        p.loadOccupancy = 14;
        p.rmwLocalCycles = 22;
        p.rmwRemoteCycles = 190;
        p.casRetryCycles = 60;
        p.parkCycles = 3000;
        p.wakeCyclesPerWaiter = 650;
        p.wakeLatencyCycles = 3800;
        p.spinResumeCycles = 60;
        p.criticalOpCycles = 15;
        profiles.push_back(p);
    }

    // gem5-20 simulated Intel Ice Lake server: 64 cores on one mesh,
    // uniform and lower transfer latencies; gem5's simulated OS wakeups
    // are cheaper.  Paper reports 34% average gain here.
    {
        MachineProfile p;
        p.name = "icelake64";
        p.maxThreads = 64;
        p.workUnitCycles = 12;
        p.loadLocalCycles = 4;
        p.loadRemoteCycles = 70;
        p.loadOccupancy = 9;
        p.rmwLocalCycles = 20;
        p.rmwRemoteCycles = 95;
        p.casRetryCycles = 35;
        p.parkCycles = 1300;
        p.wakeCyclesPerWaiter = 260;
        p.wakeLatencyCycles = 1500;
        p.spinResumeCycles = 45;
        p.criticalOpCycles = 15;
        profiles.push_back(p);
    }

    // Small, fast profile for unit tests: tiny latencies keep simulated
    // numbers easy to reason about by hand.
    {
        MachineProfile p;
        p.name = "test4";
        p.maxThreads = 4;
        p.workUnitCycles = 1;
        p.loadLocalCycles = 1;
        p.loadRemoteCycles = 10;
        p.loadOccupancy = 2;
        p.rmwLocalCycles = 2;
        p.rmwRemoteCycles = 10;
        p.casRetryCycles = 3;
        p.parkCycles = 50;
        p.wakeCyclesPerWaiter = 10;
        p.wakeLatencyCycles = 60;
        p.spinResumeCycles = 5;
        p.criticalOpCycles = 2;
        profiles.push_back(p);
    }

    return profiles;
}

const std::vector<MachineProfile>&
profiles()
{
    static const std::vector<MachineProfile> instance = buildProfiles();
    return instance;
}

} // namespace

const MachineProfile&
machineProfile(const std::string& name)
{
    for (const auto& profile : profiles())
        if (profile.name == name)
            return profile;
    fatal("unknown machine profile '" + name + "'");
}

std::vector<std::string>
machineProfileNames()
{
    std::vector<std::string> names;
    for (const auto& profile : profiles())
        names.push_back(profile.name);
    return names;
}

} // namespace splash
