#include "sim/machine.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "sim/builtin_profiles.h"
#include "util/json.h"
#include "util/log.h"

namespace splash {

namespace {

const char* const kOpKeys[kNumAtomicOps] = {"load", "store", "cas",
                                            "faa", "swp"};
const char* const kStateKeys[kNumCoherenceStates] = {
    "owned", "shared", "invalidLocal", "invalidRemote"};

/** Hard ceiling on modeled hardware threads (sanity, not a design). */
constexpr int kMaxModeledThreads = 65536;

std::uint64_t
fnv1a64(const std::string& text)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

/** Validation context: origin label + first-error capture. */
struct Check
{
    const std::string& origin;
    std::string& error;
    bool ok = true;

    bool
    fail(const std::string& what)
    {
        if (ok) {
            error = origin + ": " + what;
            ok = false;
        }
        return false;
    }
};

/** Every member of @p obj must appear in @p allowed. */
bool
rejectUnknown(Check& check, const json::Value& obj,
              const std::string& where,
              std::initializer_list<const char*> allowed)
{
    for (const auto& [key, value] : obj.members()) {
        (void)value;
        bool known = false;
        for (const char* name : allowed)
            if (key == name)
                known = true;
        if (!known)
            return check.fail("unknown field '" + where + key + "'");
    }
    return true;
}

const json::Value*
requireField(Check& check, const json::Value& obj,
             const std::string& where, const char* key,
             json::Value::Kind kind)
{
    const json::Value* field = obj.find(key);
    if (field == nullptr) {
        check.fail("missing field '" + where + key + "'");
        return nullptr;
    }
    if (field->kind() != kind) {
        check.fail("field '" + where + key + "' must be " +
                   json::Value::kindName(kind) + ", got " +
                   json::Value::kindName(field->kind()));
        return nullptr;
    }
    return field;
}

/** Non-negative whole number (cycle counts, core counts). */
bool
requireCount(Check& check, const json::Value& obj,
             const std::string& where, const char* key,
             std::int64_t& out, std::int64_t min = 0)
{
    const json::Value* field =
        requireField(check, obj, where, key, json::Value::Kind::Number);
    if (field == nullptr)
        return false;
    const double v = field->asNumber();
    if (!(v >= static_cast<double>(min)) || v > 9.0e15 ||
        std::floor(v) != v)
        return check.fail("field '" + where + key +
                          "' must be a whole number >= " +
                          std::to_string(min));
    out = static_cast<std::int64_t>(v);
    return true;
}

bool
parseTopology(Check& check, const json::Value& obj,
              MachineTopology& topo)
{
    const std::string where = "topology.";
    if (!rejectUnknown(check, obj, where,
                       {"domains", "coresPerDomain", "smtPerCore",
                        "domainDistanceCycles",
                        "smtSiblingTransferCycles"}))
        return false;
    std::int64_t domains = 0, cores = 0, smt = 0;
    if (!requireCount(check, obj, where, "domains", domains, 1) ||
        !requireCount(check, obj, where, "coresPerDomain", cores, 1) ||
        !requireCount(check, obj, where, "smtPerCore", smt, 1))
        return false;
    if (domains * cores * smt > kMaxModeledThreads)
        return check.fail("topology models " +
                          std::to_string(domains * cores * smt) +
                          " hardware threads; the cap is " +
                          std::to_string(kMaxModeledThreads));
    topo.domains = static_cast<int>(domains);
    topo.coresPerDomain = static_cast<int>(cores);
    topo.smtPerCore = static_cast<int>(smt);

    const json::Value* dist =
        requireField(check, obj, where, "domainDistanceCycles",
                     json::Value::Kind::Array);
    if (dist == nullptr)
        return false;
    if (dist->items().size() != static_cast<std::size_t>(domains))
        return check.fail(
            "topology.domainDistanceCycles needs exactly one entry per "
            "hop distance (" +
            std::to_string(domains) + "), got " +
            std::to_string(dist->items().size()));
    topo.domainDistanceCycles.clear();
    for (std::size_t i = 0; i < dist->items().size(); ++i) {
        const json::Value& entry = dist->items()[i];
        const double v =
            entry.isNumber() ? entry.asNumber() : -1.0;
        if (!(v >= 0) || std::floor(v) != v)
            return check.fail("topology.domainDistanceCycles[" +
                              std::to_string(i) +
                              "] must be a whole number >= 0");
        topo.domainDistanceCycles.push_back(
            static_cast<VTime>(v));
    }
    if (topo.domainDistanceCycles[0] != 0)
        return check.fail("topology.domainDistanceCycles[0] is the "
                          "same-domain hop and must be 0");

    topo.smtSiblingTransferCycles = -1;
    if (const json::Value* sibling =
            obj.find("smtSiblingTransferCycles")) {
        const double v =
            sibling->isNumber() ? sibling->asNumber() : -2.0;
        if (!(v >= -1) || std::floor(v) != v)
            return check.fail(
                "topology.smtSiblingTransferCycles must be a whole "
                "number >= -1 (-1 disables the SMT shortcut)");
        topo.smtSiblingTransferCycles = static_cast<std::int64_t>(v);
    }
    return true;
}

bool
parseAtomics(Check& check, const json::Value& obj,
             MachineProfile& profile)
{
    const std::string where = "atomics.";
    if (!rejectUnknown(check, obj, where,
                       {"mode", "casRetryCycles", "llscRetryCycles",
                        "costs"}))
        return false;
    const json::Value* mode =
        requireField(check, obj, where, "mode",
                     json::Value::Kind::String);
    if (mode == nullptr)
        return false;
    if (mode->asString() == "amo") {
        profile.llscMode = false;
    } else if (mode->asString() == "llsc") {
        profile.llscMode = true;
    } else {
        return check.fail("atomics.mode must be \"amo\" or \"llsc\", "
                          "got \"" + mode->asString() + "\"");
    }
    std::int64_t casRetry = 0;
    if (!requireCount(check, obj, where, "casRetryCycles", casRetry))
        return false;
    profile.casRetryCycles = static_cast<VTime>(casRetry);
    profile.llscRetryCycles = 0;
    if (profile.llscMode) {
        std::int64_t llscRetry = 0;
        if (!requireCount(check, obj, where, "llscRetryCycles",
                          llscRetry))
            return false;
        profile.llscRetryCycles = static_cast<VTime>(llscRetry);
    } else if (obj.find("llscRetryCycles") != nullptr) {
        return check.fail("atomics.llscRetryCycles is only meaningful "
                          "with mode \"llsc\"");
    }

    const json::Value* costs = requireField(
        check, obj, where, "costs", json::Value::Kind::Object);
    if (costs == nullptr)
        return false;
    if (!rejectUnknown(check, *costs, where + "costs.",
                       {"load", "store", "cas", "faa", "swp"}))
        return false;
    for (int op = 0; op < kNumAtomicOps; ++op) {
        const json::Value* row =
            requireField(check, *costs, where + "costs.", kOpKeys[op],
                         json::Value::Kind::Object);
        if (row == nullptr)
            return false;
        const std::string rowWhere =
            where + "costs." + kOpKeys[op] + ".";
        if (!rejectUnknown(check, *row, rowWhere,
                           {"owned", "shared", "invalidLocal",
                            "invalidRemote"}))
            return false;
        for (int state = 0; state < kNumCoherenceStates; ++state) {
            std::int64_t cycles = 0;
            if (!requireCount(check, *row, rowWhere, kStateKeys[state],
                              cycles))
                return false;
            profile.atomicCycles[op][state] =
                static_cast<VTime>(cycles);
        }
    }
    return true;
}

bool
parseSection(Check& check, const json::Value& root, const char* name,
             const json::Value*& out)
{
    out = nullptr;
    const json::Value* section = requireField(
        check, root, "", name, json::Value::Kind::Object);
    if (section == nullptr)
        return false;
    out = section;
    return true;
}

} // namespace

const char*
toString(AtomicOp op)
{
    return kOpKeys[static_cast<int>(op)];
}

const char*
toString(CoherenceState state)
{
    return kStateKeys[static_cast<int>(state)];
}

const char*
toString(TransferScope scope)
{
    switch (scope) {
      case TransferScope::SameCore:
        return "same_core";
      case TransferScope::SameDomain:
        return "same_domain";
      case TransferScope::CrossDomain:
        return "cross_domain";
      case TransferScope::Memory:
        return "memory";
    }
    return "?";
}

bool
parseMachineProfile(const std::string& text, const std::string& origin,
                    MachineProfile& out, std::string& error)
{
    Check check{origin, error};
    json::Value root;
    std::string parseError;
    if (!json::parse(text, root, parseError))
        return check.fail(parseError);
    if (!root.isObject())
        return check.fail("profile document must be a JSON object");
    if (!rejectUnknown(check, root, "",
                       {"schema", "name", "description", "isa",
                        "topology", "atomics", "execution",
                        "scheduler"}))
        return false;

    const json::Value* schema = requireField(
        check, root, "", "schema", json::Value::Kind::String);
    if (schema == nullptr)
        return false;
    if (schema->asString() != kMachineSchema)
        return check.fail("schema is '" + schema->asString() +
                          "', expected '" + kMachineSchema + "'");

    const json::Value* name = requireField(
        check, root, "", "name", json::Value::Kind::String);
    if (name == nullptr)
        return false;
    if (name->asString().empty())
        return check.fail("name must not be empty");
    for (const char c : name->asString()) {
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '-' || c == '_' || c == '.'))
            return check.fail("name '" + name->asString() +
                              "' may only use [a-z0-9._-]");
    }
    out = MachineProfile{};
    out.name = name->asString();
    if (const json::Value* desc = root.find("description")) {
        if (!desc->isString())
            return check.fail("description must be a string");
        out.description = desc->asString();
    }
    if (const json::Value* isa = root.find("isa")) {
        if (!isa->isString())
            return check.fail("isa must be a string");
        out.isa = isa->asString();
    }

    const json::Value* section = nullptr;
    if (!parseSection(check, root, "topology", section) ||
        !parseTopology(check, *section, out.topology))
        return false;
    if (!parseSection(check, root, "atomics", section) ||
        !parseAtomics(check, *section, out))
        return false;

    if (!parseSection(check, root, "execution", section))
        return false;
    if (!rejectUnknown(check, *section, "execution.",
                       {"workUnitCycles", "loadOccupancyCycles"}))
        return false;
    std::int64_t v = 0;
    if (!requireCount(check, *section, "execution.", "workUnitCycles",
                      v, 1))
        return false;
    out.workUnitCycles = static_cast<VTime>(v);
    if (!requireCount(check, *section, "execution.",
                      "loadOccupancyCycles", v))
        return false;
    out.loadOccupancy = static_cast<VTime>(v);

    if (!parseSection(check, root, "scheduler", section))
        return false;
    if (!rejectUnknown(check, *section, "scheduler.",
                       {"parkCycles", "wakeCyclesPerWaiter",
                        "wakeLatencyCycles", "spinResumeCycles",
                        "criticalOpCycles"}))
        return false;
    struct
    {
        const char* key;
        VTime MachineProfile::*field;
    } schedFields[] = {
        {"parkCycles", &MachineProfile::parkCycles},
        {"wakeCyclesPerWaiter", &MachineProfile::wakeCyclesPerWaiter},
        {"wakeLatencyCycles", &MachineProfile::wakeLatencyCycles},
        {"spinResumeCycles", &MachineProfile::spinResumeCycles},
        {"criticalOpCycles", &MachineProfile::criticalOpCycles},
    };
    for (const auto& field : schedFields) {
        if (!requireCount(check, *section, "scheduler.", field.key, v))
            return false;
        out.*(field.field) = static_cast<VTime>(v);
    }

    out.contentHash = [&] {
        char buf[17];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(fnv1a64(
                          machineProfileCanonicalText(out))));
        return std::string(buf);
    }();
    return true;
}

std::string
machineProfileCanonicalText(const MachineProfile& profile)
{
    // Covers every field that shapes simulated results — and nothing
    // else: name/description/isa stay out, so two differently-named
    // profiles with identical semantics content-hash (and job-id)
    // identically, which is exactly when their cached results are
    // interchangeable.
    std::ostringstream os;
    const MachineTopology& t = profile.topology;
    os << "topo=" << t.domains << 'x' << t.coresPerDomain << 'x'
       << t.smtPerCore << ";dist=";
    for (std::size_t i = 0; i < t.domainDistanceCycles.size(); ++i)
        os << (i ? "," : "") << t.domainDistanceCycles[i];
    os << ";smtxfer=" << t.smtSiblingTransferCycles
       << ";mode=" << (profile.llscMode ? "llsc" : "amo")
       << ";casretry=" << profile.casRetryCycles
       << ";llscretry=" << profile.llscRetryCycles;
    for (int op = 0; op < kNumAtomicOps; ++op) {
        os << ';' << kOpKeys[op] << '=';
        for (int state = 0; state < kNumCoherenceStates; ++state)
            os << (state ? "," : "")
               << profile.atomicCycles[op][state];
    }
    os << ";work=" << profile.workUnitCycles
       << ";occ=" << profile.loadOccupancy
       << ";park=" << profile.parkCycles
       << ";wakeper=" << profile.wakeCyclesPerWaiter
       << ";wakelat=" << profile.wakeLatencyCycles
       << ";spin=" << profile.spinResumeCycles
       << ";crit=" << profile.criticalOpCycles;
    return os.str();
}

std::string
machineProfileToJson(const MachineProfile& profile)
{
    std::ostringstream os;
    const MachineTopology& t = profile.topology;
    os << "{\n"
       << "  \"schema\": \"" << kMachineSchema << "\",\n"
       << "  \"name\": \"" << json::escape(profile.name) << "\",\n";
    if (!profile.description.empty())
        os << "  \"description\": \""
           << json::escape(profile.description) << "\",\n";
    if (!profile.isa.empty())
        os << "  \"isa\": \"" << json::escape(profile.isa) << "\",\n";
    os << "  \"topology\": {\n"
       << "    \"domains\": " << t.domains << ",\n"
       << "    \"coresPerDomain\": " << t.coresPerDomain << ",\n"
       << "    \"smtPerCore\": " << t.smtPerCore << ",\n"
       << "    \"domainDistanceCycles\": [";
    for (std::size_t i = 0; i < t.domainDistanceCycles.size(); ++i)
        os << (i ? ", " : "") << t.domainDistanceCycles[i];
    os << "]";
    if (t.smtSiblingTransferCycles >= 0)
        os << ",\n    \"smtSiblingTransferCycles\": "
           << t.smtSiblingTransferCycles;
    os << "\n  },\n"
       << "  \"atomics\": {\n"
       << "    \"mode\": \"" << (profile.llscMode ? "llsc" : "amo")
       << "\",\n"
       << "    \"casRetryCycles\": " << profile.casRetryCycles;
    if (profile.llscMode)
        os << ",\n    \"llscRetryCycles\": "
           << profile.llscRetryCycles;
    os << ",\n    \"costs\": {\n";
    for (int op = 0; op < kNumAtomicOps; ++op) {
        os << "      \"" << kOpKeys[op] << "\": {";
        for (int state = 0; state < kNumCoherenceStates; ++state)
            os << (state ? ", " : "") << "\"" << kStateKeys[state]
               << "\": " << profile.atomicCycles[op][state];
        os << "}" << (op + 1 < kNumAtomicOps ? "," : "") << "\n";
    }
    os << "    }\n"
       << "  },\n"
       << "  \"execution\": {\n"
       << "    \"workUnitCycles\": " << profile.workUnitCycles
       << ",\n"
       << "    \"loadOccupancyCycles\": " << profile.loadOccupancy
       << "\n  },\n"
       << "  \"scheduler\": {\n"
       << "    \"parkCycles\": " << profile.parkCycles << ",\n"
       << "    \"wakeCyclesPerWaiter\": "
       << profile.wakeCyclesPerWaiter << ",\n"
       << "    \"wakeLatencyCycles\": " << profile.wakeLatencyCycles
       << ",\n"
       << "    \"spinResumeCycles\": " << profile.spinResumeCycles
       << ",\n"
       << "    \"criticalOpCycles\": " << profile.criticalOpCycles
       << "\n  }\n"
       << "}\n";
    return os.str();
}

namespace {

/** Built-in + file-loaded profile registry (cached by spec). */
class ProfileRegistry
{
  public:
    ProfileRegistry()
    {
        for (const auto& builtin : kBuiltinMachineJson) {
            MachineProfile profile;
            std::string error;
            if (!parseMachineProfile(builtin.json,
                                     std::string("builtin '") +
                                         builtin.name + "'",
                                     profile, error))
                fatal("embedded machine profile is invalid -- " +
                      error);
            panicIf(profile.name != builtin.name,
                    "embedded machine profile name mismatch");
            names_.push_back(profile.name);
            cache_.emplace(profile.name, std::move(profile));
        }
    }

    const MachineProfile&
    resolve(const std::string& spec)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(spec);
        if (it != cache_.end())
            return it->second;
        const bool looksLikeFile =
            spec.find('/') != std::string::npos ||
            (spec.size() > 5 &&
             spec.compare(spec.size() - 5, 5, ".json") == 0);
        if (!looksLikeFile) {
            std::string known;
            for (const auto& name : names_)
                known += (known.empty() ? "" : ", ") + name;
            fatal("unknown machine '" + spec +
                  "' (built-ins: " + known +
                  "; a path or *.json loads a profile file)");
        }
        std::ifstream in(spec);
        if (!in)
            fatal("cannot read machine profile '" + spec + "'");
        std::ostringstream text;
        text << in.rdbuf();
        MachineProfile profile;
        std::string error;
        if (!parseMachineProfile(text.str(), spec, profile, error))
            fatal("invalid machine profile -- " + error);
        return cache_.emplace(spec, std::move(profile)).first->second;
    }

    std::vector<std::string> names() const { return names_; }

  private:
    std::mutex mutex_;
    std::map<std::string, MachineProfile> cache_;
    std::vector<std::string> names_;
};

ProfileRegistry&
registry()
{
    static ProfileRegistry instance;
    return instance;
}

} // namespace

const MachineProfile&
machineProfile(const std::string& spec)
{
    return registry().resolve(spec);
}

std::vector<std::string>
machineProfileNames()
{
    return registry().names();
}

} // namespace splash
