#include "analysis/race_checker.h"

#include <gtest/gtest.h>

#include "analysis/race_report.h"
#include "core/benchmark.h"
#include "engine/engine.h"

namespace splash {
namespace {

// ---------------------------------------------------------------------
// RaceChecker-level checks (no engine involved).
// ---------------------------------------------------------------------

TEST(RaceCheckerTest, RmwValueOrdersConsecutiveUpdates)
{
    RaceChecker checker(2, SuiteVersion::Splash4);
    int line = 0, value = 0;
    checker.registerSync(&line, "ticket#0");
    checker.registerSync(&value, "ticket#0.value");

    checker.rmwValue(0, &line, &value, 10);
    checker.rmwValue(1, &line, &value, 20);
    checker.rmwValue(0, &line, &value, 30);

    const RaceReport report = checker.takeReport();
    EXPECT_TRUE(report.races.empty()) << report.format();
}

TEST(RaceCheckerTest, PlainResetRacingWithRmwIsCaught)
{
    // A reset is a plain store by contract (single-threaded phase
    // only); interleaving it with another thread's RMW with no ordering
    // sync must surface as a race on the value cell.
    RaceChecker checker(2, SuiteVersion::Splash4);
    int line = 0, value = 0;
    checker.registerSync(&line, "ticket#0");
    checker.registerSync(&value, "ticket#0.value");

    checker.rmwValue(0, &line, &value, 10);
    checker.syncValueAccess(AccessKind::Write, 1, &value, 20);

    const RaceReport report = checker.takeReport();
    ASSERT_EQ(report.races.size(), 1u);
    EXPECT_NE(report.races[0].location.find("ticket#0.value"),
              std::string::npos);
}

TEST(RaceCheckerTest, BarrierOrdersAllThreads)
{
    RaceChecker checker(3, SuiteVersion::Splash4);
    int barrier = 0;
    int data = 0;
    checker.registerSync(&barrier, "barrier#0");

    checker.access(AccessKind::Write, 0, &data, sizeof(data), "data",
                   1);
    for (int tid = 0; tid < 3; ++tid)
        checker.barrierArrive(tid, &barrier, 10);
    for (int tid = 0; tid < 3; ++tid)
        checker.barrierDepart(tid, &barrier, 11);
    for (int tid = 0; tid < 3; ++tid)
        checker.access(AccessKind::Read, tid, &data, sizeof(data),
                       "data", 20);

    const RaceReport report = checker.takeReport();
    EXPECT_TRUE(report.races.empty()) << report.format();
}

TEST(RaceCheckerTest, FreshThreadsRaceWithoutSync)
{
    RaceChecker checker(2, SuiteVersion::Splash4);
    int data = 0;
    checker.access(AccessKind::Write, 0, &data, sizeof(data), "data",
                   1);
    checker.access(AccessKind::Write, 1, &data, sizeof(data), "data",
                   2);
    const RaceReport report = checker.takeReport();
    ASSERT_EQ(report.races.size(), 1u);
    EXPECT_EQ(report.races[0].priorTid, 0);
    EXPECT_EQ(report.races[0].laterTid, 1);
}

TEST(RaceCheckerTest, TimedLocksOnlyCountInsideSections)
{
    RaceChecker checker(1, SuiteVersion::Splash4);
    int lock = 0;
    checker.registerSync(&lock, "lock#0");

    checker.lockAcquired(0, &lock, 1); // untimed: not counted
    checker.timedBegin(0, "phase");
    checker.lockAcquired(0, &lock, 2);
    checker.timedEnd(0);
    checker.lockAcquired(0, &lock, 3); // untimed again

    const RaceReport report = checker.takeReport();
    EXPECT_EQ(report.timedLockAcquires, 1u);
    ASSERT_EQ(report.timedLocks.size(), 1u);
    EXPECT_EQ(report.timedLocks[0].section, "phase");
    EXPECT_EQ(report.timedLocks[0].lockName, "lock#0");
    EXPECT_FALSE(report.clean());
}

TEST(RaceCheckerTest, TimedLockInvariantIsSplash4Only)
{
    RaceChecker checker(1, SuiteVersion::Splash3);
    int lock = 0;
    checker.timedBegin(0, "phase");
    checker.lockAcquired(0, &lock, 1);
    checker.timedEnd(0);
    const RaceReport report = checker.takeReport();
    EXPECT_EQ(report.timedLockAcquires, 1u);
    EXPECT_TRUE(report.clean()); // locks are Splash-3's normal state
}

// ---------------------------------------------------------------------
// End-to-end fixtures through the sim engine.
// ---------------------------------------------------------------------

/** Deliberately racy: every thread bumps one counter with no sync. */
class RacyCounterFixture : public Benchmark
{
  public:
    std::string name() const override { return "racy-counter"; }
    std::string description() const override
    {
        return "unsynchronized shared counter (race fixture)";
    }
    std::string inputDescription() const override { return "1 word"; }

    void
    setup(World& world, const Params&) override
    {
        counter_ = 0;
        barrier_ = world.createBarrier();
    }

    void
    run(Context& ctx) override
    {
        // The barrier gives every thread construct-level history, so a
        // reported race carries a meaningful trace; the increments
        // after it are unordered on purpose.
        ctx.barrier(barrier_);
        ++counter_;
        ctx.annotateWrite(&counter_, sizeof(counter_),
                          "racy.counter");
        ctx.work(1);
    }

    bool
    verify(std::string& message) override
    {
        message = "racy fixture has no invariant";
        return true;
    }

  private:
    std::uint64_t counter_ = 0;
    BarrierHandle barrier_;
};

/** Correct lock-free reduction plus disjoint per-thread writes. */
class LockFreeReductionFixture : public Benchmark
{
  public:
    std::string name() const override { return "lockfree-reduction"; }
    std::string description() const override
    {
        return "sum reduction + disjoint slots (clean fixture)";
    }
    std::string inputDescription() const override
    {
        return "1 accumulator";
    }

    void
    setup(World& world, const Params&) override
    {
        sum_ = world.createSum(0.0);
        barrier_ = world.createBarrier();
        slots_.assign(static_cast<std::size_t>(world.nthreads()), 0.0);
        total_ = 0.0;
    }

    void
    run(Context& ctx) override
    {
        const int tid = ctx.tid();
        ctx.timedBegin("reduce");
        // Disjoint per-thread slots: never a conflict.
        slots_[static_cast<std::size_t>(tid)] = tid + 1.0;
        ctx.annotateWrite(&slots_[static_cast<std::size_t>(tid)],
                          sizeof(double), "slots");
        ctx.sumAdd(sum_, tid + 1.0);
        ctx.barrier(barrier_);
        // Everyone may read every slot after the barrier.
        ctx.annotateRead(slots_.data(),
                         slots_.size() * sizeof(double), "slots");
        if (tid == 0)
            total_ = ctx.sumRead(sum_);
        ctx.work(1);
        ctx.timedEnd();
    }

    bool
    verify(std::string& message) override
    {
        const double n = static_cast<double>(slots_.size());
        const double want = n * (n + 1.0) / 2.0;
        message = "total=" + std::to_string(total_);
        return total_ == want;
    }

  private:
    SumHandle sum_;
    BarrierHandle barrier_;
    std::vector<double> slots_;
    double total_ = 0.0;
};

/** Takes a lock inside its timed section (Splash-4 violation). */
class TimedLockFixture : public Benchmark
{
  public:
    std::string name() const override { return "timed-lock"; }
    std::string description() const override
    {
        return "lock acquired inside a timed section";
    }
    std::string inputDescription() const override { return "1 lock"; }

    void
    setup(World& world, const Params&) override
    {
        lock_ = world.createLock();
        counter_ = 0;
    }

    void
    run(Context& ctx) override
    {
        ctx.timedBegin("guarded-update");
        ctx.lockAcquire(lock_);
        ++counter_;
        ctx.annotateWrite(&counter_, sizeof(counter_), "counter");
        ctx.lockRelease(lock_);
        ctx.timedEnd();
    }

    bool
    verify(std::string& message) override
    {
        message = "counter=" + std::to_string(counter_);
        return true;
    }

  private:
    LockHandle lock_;
    std::uint64_t counter_ = 0;
};

RunConfig
checkedConfig(SuiteVersion suite, int threads)
{
    RunConfig config;
    config.threads = threads;
    config.suite = suite;
    config.engine = EngineKind::Sim;
    config.raceCheck = true;
    return config;
}

TEST(SyncSentryEndToEnd, RacyFixtureIsFlaggedWithTrace)
{
    RacyCounterFixture fixture;
    const RunResult result =
        runBenchmark(fixture, checkedConfig(SuiteVersion::Splash4, 4));
    ASSERT_TRUE(result.raceReport);
    EXPECT_FALSE(result.raceReport->clean());
    ASSERT_FALSE(result.raceReport->races.empty());

    const RaceRecord& race = result.raceReport->races.front();
    EXPECT_NE(race.location.find("racy.counter"), std::string::npos);
    EXPECT_NE(race.priorTid, race.laterTid);
    // Construct-level trace: the barrier crossed before the racy
    // writes must show up in the later thread's recent sync events.
    ASSERT_FALSE(race.laterTrace.empty());
    bool saw_barrier = false;
    for (const auto& event : race.laterTrace)
        saw_barrier = saw_barrier ||
                      event.find("barrier") != std::string::npos;
    EXPECT_TRUE(saw_barrier) << result.raceReport->format();
}

TEST(SyncSentryEndToEnd, RacyFixtureFlaggedInBothSuites)
{
    for (const auto suite :
         {SuiteVersion::Splash3, SuiteVersion::Splash4}) {
        RacyCounterFixture fixture;
        const RunResult result =
            runBenchmark(fixture, checkedConfig(suite, 4));
        ASSERT_TRUE(result.raceReport);
        EXPECT_FALSE(result.raceReport->races.empty());
    }
}

TEST(SyncSentryEndToEnd, LockFreeReductionIsClean)
{
    for (const auto suite :
         {SuiteVersion::Splash3, SuiteVersion::Splash4}) {
        LockFreeReductionFixture fixture;
        const RunResult result =
            runBenchmark(fixture, checkedConfig(suite, 8));
        EXPECT_TRUE(result.verified) << result.verifyMessage;
        ASSERT_TRUE(result.raceReport);
        EXPECT_TRUE(result.raceReport->clean())
            << result.raceReport->format();
        EXPECT_TRUE(result.raceReport->races.empty());
    }
}

TEST(SyncSentryEndToEnd, TimedSectionLockFailsSplash4Contract)
{
    TimedLockFixture fixture;
    const RunResult result =
        runBenchmark(fixture, checkedConfig(SuiteVersion::Splash4, 4));
    ASSERT_TRUE(result.raceReport);
    EXPECT_TRUE(result.raceReport->races.empty())
        << result.raceReport->format();
    EXPECT_EQ(result.raceReport->timedLockAcquires, 4u);
    EXPECT_FALSE(result.raceReport->clean());
    ASSERT_FALSE(result.raceReport->timedLocks.empty());
    EXPECT_EQ(result.raceReport->timedLocks[0].section,
              "guarded-update");
}

TEST(SyncSentryEndToEnd, TimedSectionLockIsFineUnderSplash3)
{
    TimedLockFixture fixture;
    const RunResult result =
        runBenchmark(fixture, checkedConfig(SuiteVersion::Splash3, 4));
    ASSERT_TRUE(result.raceReport);
    EXPECT_GT(result.raceReport->timedLockAcquires, 0u);
    EXPECT_TRUE(result.raceReport->clean())
        << result.raceReport->format();
}

TEST(SyncSentryEndToEnd, NoReportWithoutRaceCheck)
{
    LockFreeReductionFixture fixture;
    RunConfig config = checkedConfig(SuiteVersion::Splash4, 4);
    config.raceCheck = false;
    const RunResult result = runBenchmark(fixture, config);
    EXPECT_FALSE(result.raceReport);
}

} // namespace
} // namespace splash
