#include "analysis/vector_clock.h"

#include <gtest/gtest.h>

namespace splash {
namespace {

TEST(VectorClockTest, StartsAtZero)
{
    VectorClock vc(4);
    EXPECT_EQ(vc.size(), 4);
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(vc.get(t), 0u);
}

TEST(VectorClockTest, TickAdvancesOwnComponentOnly)
{
    VectorClock vc(3);
    vc.tick(1);
    vc.tick(1);
    EXPECT_EQ(vc.get(0), 0u);
    EXPECT_EQ(vc.get(1), 2u);
    EXPECT_EQ(vc.get(2), 0u);
}

TEST(VectorClockTest, RaiseNeverLowers)
{
    VectorClock vc(2);
    vc.raise(0, 5);
    vc.raise(0, 3);
    EXPECT_EQ(vc.get(0), 5u);
}

TEST(VectorClockTest, JoinIsPointwiseMax)
{
    VectorClock a(3), b(3);
    a.raise(0, 4);
    a.raise(2, 1);
    b.raise(0, 2);
    b.raise(1, 7);
    a.joinWith(b);
    EXPECT_EQ(a.get(0), 4u);
    EXPECT_EQ(a.get(1), 7u);
    EXPECT_EQ(a.get(2), 1u);
}

TEST(VectorClockTest, LeqIsPartialOrder)
{
    VectorClock a(2), b(2), c(2);
    a.raise(0, 1);
    b.raise(0, 2);
    b.raise(1, 1);
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
    // Incomparable pair: neither leq the other.
    c.raise(1, 3);
    EXPECT_FALSE(b.leq(c));
    EXPECT_FALSE(c.leq(b));
}

TEST(VectorClockTest, EpochCoverage)
{
    VectorClock vc(2);
    vc.raise(1, 3);
    EXPECT_TRUE(vc.covers(Epoch{1, 3}));
    EXPECT_TRUE(vc.covers(Epoch{1, 2}));
    EXPECT_FALSE(vc.covers(Epoch{1, 4}));
    EXPECT_TRUE(vc.covers(Epoch{0, 0}));
    EXPECT_FALSE(vc.covers(Epoch{0, 1}));
}

TEST(VectorClockTest, FirstExceedingNamesAWitness)
{
    VectorClock a(3), b(3);
    a.raise(1, 2);
    EXPECT_EQ(a.firstExceeding(b), 1);
    b.raise(1, 2);
    EXPECT_EQ(a.firstExceeding(b), -1);
}

TEST(VectorClockTest, JoinModelsReleaseAcquire)
{
    // t0 releases into a lock clock; t1 acquires: t1 must then cover
    // everything t0 had done.
    VectorClock t0(2), t1(2), lock(2);
    t0.tick(0);
    t0.tick(0);
    const Epoch write = t0.epochOf(0);
    lock.joinWith(t0); // release
    t0.tick(0);
    EXPECT_FALSE(t1.covers(write));
    t1.joinWith(lock); // acquire
    EXPECT_TRUE(t1.covers(write));
}

TEST(VectorClockTest, ToStringListsComponents)
{
    VectorClock vc(3);
    vc.raise(1, 2);
    EXPECT_EQ(vc.toString(), "<0,2,0>");
}

} // namespace
} // namespace splash
