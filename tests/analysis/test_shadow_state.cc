#include "analysis/shadow_state.h"

#include <gtest/gtest.h>

namespace splash {
namespace {

// Thread clocks as FastTrack initializes them: each thread's own
// component starts at 1 so fresh epochs are never vacuously covered.
VectorClock
freshClock(int nthreads, int tid)
{
    VectorClock vc(nthreads);
    vc.tick(tid);
    return vc;
}

TEST(ShadowStateTest, UnorderedWritesConflict)
{
    ShadowState shadow;
    std::uint64_t word = 0;
    VectorClock t0 = freshClock(2, 0);
    VectorClock t1 = freshClock(2, 1);

    auto c = shadow.onAccess(AccessKind::Write, &word, sizeof(word), 0,
                             t0, 10, "word");
    EXPECT_FALSE(c.racy);
    c = shadow.onAccess(AccessKind::Write, &word, sizeof(word), 1, t1,
                        20, "word");
    ASSERT_TRUE(c.racy);
    EXPECT_EQ(c.priorKind, AccessKind::Write);
    EXPECT_EQ(c.priorTid, 0);
    EXPECT_EQ(c.priorWhen, 10u);
}

TEST(ShadowStateTest, HappensBeforeOrderedWritesDoNotConflict)
{
    ShadowState shadow;
    std::uint64_t word = 0;
    VectorClock t0 = freshClock(2, 0);
    VectorClock t1 = freshClock(2, 1);

    shadow.onAccess(AccessKind::Write, &word, sizeof(word), 0, t0, 10,
                    "word");
    t1.joinWith(t0); // e.g. lock handoff or barrier
    const auto c = shadow.onAccess(AccessKind::Write, &word,
                                   sizeof(word), 1, t1, 20, "word");
    EXPECT_FALSE(c.racy);
}

TEST(ShadowStateTest, ReadAfterUnorderedWriteConflicts)
{
    ShadowState shadow;
    std::uint32_t word = 0;
    VectorClock t0 = freshClock(2, 0);
    VectorClock t1 = freshClock(2, 1);

    shadow.onAccess(AccessKind::Write, &word, sizeof(word), 0, t0, 1,
                    "word");
    const auto c = shadow.onAccess(AccessKind::Read, &word,
                                   sizeof(word), 1, t1, 2, "word");
    ASSERT_TRUE(c.racy);
    EXPECT_EQ(c.priorKind, AccessKind::Write);
    EXPECT_EQ(c.priorTid, 0);
}

TEST(ShadowStateTest, WriteAfterUnorderedReadConflicts)
{
    ShadowState shadow;
    std::uint32_t word = 0;
    VectorClock t0 = freshClock(2, 0);
    VectorClock t1 = freshClock(2, 1);

    shadow.onAccess(AccessKind::Read, &word, sizeof(word), 0, t0, 1,
                    "word");
    const auto c = shadow.onAccess(AccessKind::Write, &word,
                                   sizeof(word), 1, t1, 2, "word");
    ASSERT_TRUE(c.racy);
    EXPECT_EQ(c.priorKind, AccessKind::Read);
    EXPECT_EQ(c.priorTid, 0);
}

TEST(ShadowStateTest, ConcurrentReadersAloneAreFine)
{
    ShadowState shadow;
    std::uint32_t word = 0;
    VectorClock t0 = freshClock(3, 0);
    VectorClock t1 = freshClock(3, 1);
    VectorClock t2 = freshClock(3, 2);

    EXPECT_FALSE(shadow
                     .onAccess(AccessKind::Read, &word, sizeof(word),
                               0, t0, 1, "word")
                     .racy);
    EXPECT_FALSE(shadow
                     .onAccess(AccessKind::Read, &word, sizeof(word),
                               1, t1, 2, "word")
                     .racy);
    EXPECT_FALSE(shadow
                     .onAccess(AccessKind::Read, &word, sizeof(word),
                               2, t2, 3, "word")
                     .racy);
}

TEST(ShadowStateTest, ReadClockPromotionCatchesEveryReader)
{
    // Two concurrent readers force the cell onto the read-vector-clock
    // path; a later writer ordered after only ONE of them must still
    // conflict with the other.
    ShadowState shadow;
    std::uint32_t word = 0;
    VectorClock t0 = freshClock(3, 0);
    VectorClock t1 = freshClock(3, 1);
    VectorClock t2 = freshClock(3, 2);

    shadow.onAccess(AccessKind::Read, &word, sizeof(word), 0, t0, 1,
                    "word");
    shadow.onAccess(AccessKind::Read, &word, sizeof(word), 1, t1, 2,
                    "word");
    t2.joinWith(t0); // ordered after t0's read but not t1's
    const auto c = shadow.onAccess(AccessKind::Write, &word,
                                   sizeof(word), 2, t2, 3, "word");
    ASSERT_TRUE(c.racy);
    EXPECT_EQ(c.priorKind, AccessKind::Read);
    EXPECT_EQ(c.priorTid, 1);
}

TEST(ShadowStateTest, WriteResetsReadState)
{
    ShadowState shadow;
    std::uint32_t word = 0;
    VectorClock t0 = freshClock(2, 0);
    VectorClock t1 = freshClock(2, 1);

    shadow.onAccess(AccessKind::Read, &word, sizeof(word), 1, t1, 1,
                    "word");
    t0.joinWith(t1);
    shadow.onAccess(AccessKind::Write, &word, sizeof(word), 0, t0, 2,
                    "word");
    // t1 syncs with t0's write; its next read is ordered even though
    // its own old read epoch was never covered by t0.
    t1.joinWith(t0);
    const auto c = shadow.onAccess(AccessKind::Read, &word,
                                   sizeof(word), 1, t1, 3, "word");
    EXPECT_FALSE(c.racy);
}

TEST(ShadowStateTest, RangeSplitsIntoGranules)
{
    ShadowState shadow;
    alignas(8) std::uint32_t words[4] = {};
    VectorClock t0 = freshClock(2, 0);
    VectorClock t1 = freshClock(2, 1);

    // Disjoint 4-byte elements of one array: no conflicts.
    shadow.onAccess(AccessKind::Write, &words[0], 8, 0, t0, 1, "lo");
    EXPECT_FALSE(shadow
                     .onAccess(AccessKind::Write, &words[2], 8, 1, t1,
                               2, "hi")
                     .racy);
    EXPECT_EQ(shadow.granulesTracked(), 4u);

    // An overlapping range conflicts on the shared granule.
    const auto c =
        shadow.onAccess(AccessKind::Write, &words[1], 8, 1, t1, 3,
                        "overlap");
    ASSERT_TRUE(c.racy);
    EXPECT_EQ(c.priorTid, 0);
    EXPECT_EQ(c.granuleAddr,
              reinterpret_cast<std::uintptr_t>(&words[1]));
}

TEST(ShadowStateTest, SameThreadNeverConflictsWithItself)
{
    ShadowState shadow;
    std::uint32_t word = 0;
    VectorClock t0 = freshClock(1, 0);
    for (VTime when = 1; when <= 4; ++when) {
        const auto kind =
            (when % 2) ? AccessKind::Write : AccessKind::Read;
        EXPECT_FALSE(shadow
                         .onAccess(kind, &word, sizeof(word), 0, t0,
                                   when, "word")
                         .racy);
    }
}

} // namespace
} // namespace splash
