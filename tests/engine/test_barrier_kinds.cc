#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/native_engine.h"
#include "engine/sim_engine.h"
#include "sim/machine.h"

namespace splash {
namespace {

struct KindCase
{
    BarrierKind kind;
    SuiteVersion suite;
    EngineKind engine;
};

class BarrierKindTest : public ::testing::TestWithParam<KindCase>
{
};

TEST_P(BarrierKindTest, PhasesStaySeparated)
{
    const auto& param = GetParam();
    World world(6, param.suite);
    auto bar = world.createBarrier(param.kind);

    RunConfig config;
    config.threads = 6;
    config.suite = param.suite;
    config.engine = param.engine;
    config.profile = "test4";
    auto engine = makeEngine(world, config);

    std::vector<int> phase(6, 0);
    bool ok = true;
    engine->run([&](Context& ctx) {
        for (int round = 0; round < 10; ++round) {
            phase[ctx.tid()] = round + 1;
            ctx.barrier(bar);
            for (int t = 0; t < 6; ++t)
                if (phase[t] < round + 1)
                    ok = false;
            ctx.barrier(bar);
        }
    });
    EXPECT_TRUE(ok);
}

std::string
kindCaseName(const ::testing::TestParamInfo<KindCase>& info)
{
    const char* kind = "";
    switch (info.param.kind) {
      case BarrierKind::Auto: kind = "auto"; break;
      case BarrierKind::Cond: kind = "cond"; break;
      case BarrierKind::Sense: kind = "sense"; break;
      case BarrierKind::Tree: kind = "tree"; break;
    }
    return std::string(kind) + "_" + toString(info.param.suite) + "_" +
           toString(info.param.engine);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BarrierKindTest,
    ::testing::Values(
        KindCase{BarrierKind::Auto, SuiteVersion::Splash3,
                 EngineKind::Sim},
        KindCase{BarrierKind::Auto, SuiteVersion::Splash4,
                 EngineKind::Sim},
        KindCase{BarrierKind::Cond, SuiteVersion::Splash4,
                 EngineKind::Sim},
        KindCase{BarrierKind::Sense, SuiteVersion::Splash3,
                 EngineKind::Sim},
        KindCase{BarrierKind::Tree, SuiteVersion::Splash3,
                 EngineKind::Sim},
        KindCase{BarrierKind::Tree, SuiteVersion::Splash4,
                 EngineKind::Sim},
        KindCase{BarrierKind::Cond, SuiteVersion::Splash4,
                 EngineKind::Native},
        KindCase{BarrierKind::Sense, SuiteVersion::Splash3,
                 EngineKind::Native},
        KindCase{BarrierKind::Tree, SuiteVersion::Splash3,
                 EngineKind::Native},
        KindCase{BarrierKind::Tree, SuiteVersion::Splash4,
                 EngineKind::Native}),
    kindCaseName);

TEST(BarrierKindModel, TreeScalesBetterThanSenseAtWidth)
{
    auto cost = [](BarrierKind kind, int threads) {
        World world(threads, SuiteVersion::Splash4);
        auto bar = world.createBarrier(kind);
        SimEngine engine(world, machineProfile("epyc64"));
        return engine
            .run([&](Context& ctx) {
                for (int i = 0; i < 20; ++i)
                    ctx.barrier(bar);
            })
            .makespan;
    };
    // At 64 threads the combining tree beats the centralized counter;
    // at 4 threads they are comparable (tree may even lose slightly).
    EXPECT_LT(cost(BarrierKind::Tree, 64),
              cost(BarrierKind::Sense, 64));
}

} // namespace
} // namespace splash
