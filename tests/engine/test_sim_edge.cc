#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/sim_engine.h"
#include "sim/machine.h"

namespace splash {
namespace {

const MachineProfile& prof()
{
    return machineProfile("test4");
}

TEST(SimEdge, DeadlockIsDetectedAndReported)
{
    // Thread 0 takes the lock and never releases; thread 1 blocks on
    // it forever after thread 0 finishes -> the machine must return a
    // structured Deadlock outcome with a per-thread dump instead of
    // hanging or panicking.
    World world(2, SuiteVersion::Splash4);
    auto lock = world.createLock();
    SimEngine engine(world, prof());
    auto outcome = engine.run([&](Context& ctx) {
        if (ctx.tid() == 0) {
            ctx.lockAcquire(lock);
        } else {
            ctx.work(100);
            ctx.lockAcquire(lock);
        }
    });
    EXPECT_EQ(outcome.status, RunStatus::Deadlock);
    EXPECT_NE(outcome.statusDetail.find("no runnable thread"),
              std::string::npos);
    EXPECT_NE(outcome.statusDetail.find("t1 "), std::string::npos);
}

TEST(SimEdge, MaxThreadsSupported)
{
    World world(64, SuiteVersion::Splash4);
    auto bar = world.createBarrier();
    SimEngine engine(world, machineProfile("epyc64"));
    auto outcome = engine.run([&](Context& ctx) {
        ctx.work(10);
        ctx.barrier(bar);
    });
    EXPECT_EQ(outcome.perThread.size(), 64u);
}

TEST(SimEdge, SixtyFiveThreadsRejected)
{
    // A 65th thread used to alias onto tid 0 in the 64-bit sharer
    // mask; now any oversubscription of the machine's modeled
    // hardware threads is fatal at startup.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            World world(65, SuiteVersion::Splash4);
            SimEngine engine(world, prof());
            engine.run([](Context&) {});
        },
        "65 threads but machine 'test4' models only 64");
}

TEST(SimEdge, BigMachineRunsBeyondSixtyFourThreads)
{
    // t3-512 models 512 hardware threads; 65+ must work, not alias.
    World world(80, SuiteVersion::Splash4);
    auto bar = world.createBarrier();
    SimEngine engine(world, machineProfile("t3-512"));
    auto outcome = engine.run([&](Context& ctx) {
        ctx.work(10);
        ctx.barrier(bar);
    });
    EXPECT_EQ(outcome.status, RunStatus::Ok);
    EXPECT_EQ(outcome.perThread.size(), 80u);
}

TEST(SimEdge, FiveHundredThirteenThreadsRejected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            World world(513, SuiteVersion::Splash4);
            SimEngine engine(world, machineProfile("t3-512"));
            engine.run([](Context&) {});
        },
        "513 threads but machine 't3-512' models only 512");
}

TEST(SimEdge, PureComputeMakespanIsMaxNotSum)
{
    World world(4, SuiteVersion::Splash4);
    SimEngine engine(world, prof());
    auto outcome = engine.run([&](Context& ctx) {
        ctx.work(100 * (ctx.tid() + 1));
    });
    EXPECT_EQ(outcome.makespan, 400u * prof().workUnitCycles);
}

TEST(SimEdge, LockGrantsAreFifo)
{
    // All threads queue on a held lock; record the grant order.
    World world(4, SuiteVersion::Splash4);
    auto lock = world.createLock();
    auto bar = world.createBarrier();
    std::vector<int> order;
    SimEngine engine(world, prof());
    engine.run([&](Context& ctx) {
        if (ctx.tid() == 0) {
            ctx.lockAcquire(lock);
            ctx.barrier(bar);   // everyone queues while 0 holds it
            ctx.work(1000);
            order.push_back(0);
            ctx.lockRelease(lock);
        } else {
            ctx.barrier(bar);
            ctx.work(ctx.tid()); // deterministic queueing order
            ctx.lockAcquire(lock);
            order.push_back(ctx.tid());
            ctx.lockRelease(lock);
        }
    });
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
    EXPECT_EQ(order[3], 3);
}

TEST(SimEdge, SpinLockCheaperThanMutexUnderContention)
{
    auto cycles_with = [&](LockKind kind) {
        World world(8, SuiteVersion::Splash4);
        auto lock = world.createLock(kind);
        SimEngine engine(world, machineProfile("epyc64"));
        return engine
            .run([&](Context& ctx) {
                for (int i = 0; i < 50; ++i) {
                    ctx.lockAcquire(lock);
                    ctx.work(2);
                    ctx.lockRelease(lock);
                }
            })
            .makespan;
    };
    EXPECT_LT(cycles_with(LockKind::Spin),
              cycles_with(LockKind::Mutex));
}

TEST(SimEdge, SingleThreadNeverBlocks)
{
    World world(1, SuiteVersion::Splash3);
    auto bar = world.createBarrier();
    auto lock = world.createLock();
    auto flag = world.createFlag();
    SimEngine engine(world, prof());
    auto outcome = engine.run([&](Context& ctx) {
        ctx.flagSet(flag);
        ctx.flagWait(flag);
        ctx.lockAcquire(lock);
        ctx.lockRelease(lock);
        ctx.barrier(bar);
    });
    EXPECT_GT(outcome.makespan, 0u);
}

TEST(SimEdge, StatsCategoriesCoverMakespan)
{
    // Aggregate per-category cycles of a single-threaded run must
    // equal its makespan (nothing double- or un-counted).
    World world(1, SuiteVersion::Splash4);
    auto bar = world.createBarrier();
    auto sum = world.createSum();
    SimEngine engine(world, prof());
    auto outcome = engine.run([&](Context& ctx) {
        ctx.work(100);
        ctx.sumAdd(sum, 1.0);
        ctx.barrier(bar);
    });
    VTime total = 0;
    for (int c = 0; c < static_cast<int>(TimeCategory::NumCategories);
         ++c) {
        total += outcome.perThread[0].categoryCycles[c];
    }
    EXPECT_EQ(total, outcome.makespan);
}

} // namespace
} // namespace splash
