#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/sim_engine.h"
#include "sim/machine.h"

namespace splash {
namespace {

/** A mixed workload touching every primitive kind. */
struct MixedWorkload
{
    World world;
    BarrierHandle bar;
    LockHandle lock;
    TicketHandle ticket;
    SumHandle sum;
    StackHandle stack;
    FlagHandle flag;

    explicit MixedWorkload(int threads, SuiteVersion suite)
        : world(threads, suite)
    {
        bar = world.createBarrier();
        lock = world.createLock();
        ticket = world.createTicket();
        sum = world.createSum();
        stack = world.createStack(1024);
        flag = world.createFlag();
    }

    void
    body(Context& ctx)
    {
        for (int round = 0; round < 5; ++round) {
            ctx.work(50 + 13 * ctx.tid());
            ctx.ticketNext(ticket);
            ctx.sumAdd(sum, 1.0 + ctx.tid());
            ctx.lockAcquire(lock);
            ctx.work(5);
            ctx.lockRelease(lock);
            ctx.stackPush(stack, static_cast<std::uint32_t>(
                                     ctx.tid() * 100 + round));
            ctx.barrier(bar);
            std::uint32_t v;
            ctx.stackPop(stack, v);
            if (round == 2) {
                if (ctx.tid() == 0)
                    ctx.flagSet(flag);
                else
                    ctx.flagWait(flag);
            }
            ctx.barrier(bar);
        }
    }
};

VTime
runMixed(int threads, SuiteVersion suite, const std::string& profile)
{
    MixedWorkload w(threads, suite);
    SimEngine engine(w.world, machineProfile(profile));
    return engine.run([&](Context& ctx) { w.body(ctx); }).makespan;
}

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<int, SuiteVersion>>
{
};

TEST_P(DeterminismTest, RepeatedRunsBitIdentical)
{
    const auto [threads, suite] = GetParam();
    const VTime first = runMixed(threads, suite, "test4");
    for (int rep = 0; rep < 3; ++rep)
        EXPECT_EQ(runMixed(threads, suite, "test4"), first);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeterminismTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(SuiteVersion::Splash3,
                                         SuiteVersion::Splash4)));

TEST(Determinism, ProfilesChangeMakespanNotBehavior)
{
    const VTime epyc = runMixed(8, SuiteVersion::Splash4, "epyc64");
    const VTime icelake = runMixed(8, SuiteVersion::Splash4,
                                   "icelake64");
    // Different profiles must still complete, and EPYC's pricier
    // transfers make the same workload slower.
    EXPECT_GT(epyc, icelake);
}

TEST(Determinism, MoreThreadsMoreTotalAtomics)
{
    MixedWorkload a(2, SuiteVersion::Splash4);
    SimEngine ea(a.world, machineProfile("test4"));
    auto ra = ea.run([&](Context& ctx) { a.body(ctx); });

    MixedWorkload b(8, SuiteVersion::Splash4);
    SimEngine eb(b.world, machineProfile("test4"));
    auto rb = eb.run([&](Context& ctx) { b.body(ctx); });

    std::uint64_t atomics_a = 0, atomics_b = 0;
    for (const auto& s : ra.perThread)
        atomics_a += s.ticketOps + s.sumOps + s.stackOps;
    for (const auto& s : rb.perThread)
        atomics_b += s.ticketOps + s.sumOps + s.stackOps;
    EXPECT_GT(atomics_b, atomics_a);
}

} // namespace
} // namespace splash
