/**
 * @file
 * Sync-Scope profiler contract: a profiled sim run is deterministic
 * and agrees exactly with the engine's category accounting, a profiled
 * native run produces sane wall-clock measurements, the off path opens
 * zero instrumentation windows, and the exports/wire codec round-trip.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/sync_profile.h"
#include "engine/engine.h"
#include "harness/suite.h"
#include "sync/scope_hook.h"

namespace splash {
namespace {

class SyncProfileTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { registerAllBenchmarks(); }

    static RunConfig
    config(EngineKind engine, bool profiled)
    {
        RunConfig config;
        config.threads = 4;
        config.suite = SuiteVersion::Splash4;
        config.engine = engine;
        config.profile = "test4";
        config.syncProfile = profiled;
        config.params.set("keys", std::int64_t{2048});
        config.params.set("bits", std::int64_t{4});
        return config;
    }
};

TEST_F(SyncProfileTest, SimProfileIsDeterministic)
{
    const RunResult a =
        runBenchmark("radix", config(EngineKind::Sim, true));
    const RunResult b =
        runBenchmark("radix", config(EngineKind::Sim, true));
    ASSERT_TRUE(a.syncProfile);
    ASSERT_TRUE(b.syncProfile);
    // Same seed, same config: byte-identical exports, timeline
    // included.
    EXPECT_EQ(a.syncProfile->toJson(), b.syncProfile->toJson());
    EXPECT_EQ(a.syncProfile->toChromeTrace(),
              b.syncProfile->toChromeTrace());
}

TEST_F(SyncProfileTest, SimProfileMatchesCategoryAccounting)
{
    const RunResult result =
        runBenchmark("radix", config(EngineKind::Sim, true));
    ASSERT_TRUE(result.syncProfile);
    const SyncProfile& profile = *result.syncProfile;
    EXPECT_EQ(profile.timeUnit, "cycles");
    // The profiler observes the same modeled waits ThreadStats
    // charges; per-category totals must agree exactly, which is what
    // lets fig4 be regenerated from the profile.
    for (const TimeCategory cat :
         {TimeCategory::Barrier, TimeCategory::Lock,
          TimeCategory::Atomic, TimeCategory::Flag}) {
        EXPECT_EQ(profile.categoryWait(cat),
                  static_cast<std::uint64_t>(
                      result.totals.categoryCycles[static_cast<int>(
                          cat)]))
            << "category " << toString(cat);
    }
    EXPECT_EQ(profile.computeTotal,
              static_cast<std::uint64_t>(
                  result.totals.categoryCycles[static_cast<int>(
                      TimeCategory::Compute)]));
    EXPECT_EQ(profile.availableTotal,
              profile.computeTotal + profile.waitTotal());
}

TEST_F(SyncProfileTest, SimProfileCountsMatchConstructTotals)
{
    const RunResult result =
        runBenchmark("radix", config(EngineKind::Sim, true));
    ASSERT_TRUE(result.syncProfile);
    const SyncProfile& profile = *result.syncProfile;
    std::uint64_t barrierOps = 0;
    for (const auto& c : profile.constructs)
        if (c.kind == SyncObjKind::Barrier)
            barrierOps += c.ops;
    EXPECT_EQ(barrierOps, result.totals.barrierCrossings);
    // Per-thread totals sum to the construct totals.
    std::uint64_t perThreadOps = 0;
    for (const auto& t : profile.perThread)
        perThreadOps += t.ops;
    std::uint64_t constructOps = 0;
    for (const auto& c : profile.constructs)
        constructOps += c.ops;
    EXPECT_EQ(perThreadOps, constructOps);
}

TEST_F(SyncProfileTest, NativeProfileSmoke)
{
    const RunResult result =
        runBenchmark("radix", config(EngineKind::Native, true));
    ASSERT_TRUE(result.syncProfile);
    const SyncProfile& profile = *result.syncProfile;
    EXPECT_EQ(profile.timeUnit, "ns");
    EXPECT_EQ(profile.threads, 4);
    EXPECT_GT(profile.availableTotal, 0u);
    std::uint64_t ops = 0;
    for (const auto& c : profile.constructs)
        ops += c.ops;
    EXPECT_GT(ops, 0u);
    EXPECT_GE(profile.waitFraction(), 0.0);
    EXPECT_LE(profile.waitFraction(), 1.0);
}

TEST_F(SyncProfileTest, OffPathOpensNoWindows)
{
    sync_scope::resetWindowCount();
    const RunResult off =
        runBenchmark("radix", config(EngineKind::Native, false));
    EXPECT_FALSE(off.syncProfile);
    EXPECT_EQ(sync_scope::windowCount(), 0u);
    // And the profiled path does open windows, so the counter is live.
    const RunResult on =
        runBenchmark("radix", config(EngineKind::Native, true));
    EXPECT_TRUE(on.syncProfile);
    EXPECT_GT(sync_scope::windowCount(), 0u);
    sync_scope::resetWindowCount();
}

TEST_F(SyncProfileTest, WireCodecRoundTrips)
{
    const RunResult result =
        runBenchmark("radix", config(EngineKind::Sim, true));
    ASSERT_TRUE(result.syncProfile);
    SyncProfile out;
    ASSERT_TRUE(SyncProfile::deserializeWire(
        result.syncProfile->serializeWire(), out));
    // The wire drops the event timeline but preserves every counter:
    // re-serializing must reproduce the payload, and the table-facing
    // export must match.
    EXPECT_EQ(out.serializeWire(), result.syncProfile->serializeWire());
    EXPECT_EQ(out.toCsv(), result.syncProfile->toCsv());
    EXPECT_TRUE(out.events.empty());
}

TEST_F(SyncProfileTest, WireCodecRejectsGarbage)
{
    SyncProfile out;
    EXPECT_FALSE(SyncProfile::deserializeWire("", out));
    EXPECT_FALSE(SyncProfile::deserializeWire("v9;bogus", out));
    EXPECT_FALSE(SyncProfile::deserializeWire("not a profile\n", out));
}

TEST_F(SyncProfileTest, ChromeTraceLooksWellFormed)
{
    const RunResult result =
        runBenchmark("radix", config(EngineKind::Sim, true));
    ASSERT_TRUE(result.syncProfile);
    const std::string trace = result.syncProfile->toChromeTrace();
    EXPECT_EQ(trace.front(), '{');
    EXPECT_EQ(trace.back(), '\n');
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    if (!result.syncProfile->events.empty()) {
        EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    }
}

} // namespace
} // namespace splash
