/**
 * @file
 * Chaos-Sentry determinism: a given {seed, level} must reproduce the
 * exact same perturbed schedule, and the perturbations must never
 * break correctness of the lock-free suite.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/chaos.h"
#include "engine/engine.h"
#include "engine/sim_engine.h"
#include "harness/suite.h"
#include "sim/machine.h"

namespace splash {
namespace {

/** A mixed workload touching every primitive kind. */
struct MixedWorkload
{
    World world;
    BarrierHandle bar;
    LockHandle lock;
    TicketHandle ticket;
    SumHandle sum;
    StackHandle stack;
    FlagHandle flag;

    explicit MixedWorkload(int threads, SuiteVersion suite)
        : world(threads, suite)
    {
        bar = world.createBarrier();
        lock = world.createLock();
        ticket = world.createTicket();
        sum = world.createSum();
        stack = world.createStack(1024);
        flag = world.createFlag();
    }

    void
    body(Context& ctx)
    {
        for (int round = 0; round < 5; ++round) {
            ctx.work(50 + 13 * ctx.tid());
            ctx.ticketNext(ticket);
            ctx.sumAdd(sum, 1.0 + ctx.tid());
            ctx.lockAcquire(lock);
            ctx.work(5);
            ctx.lockRelease(lock);
            ctx.stackPush(stack, static_cast<std::uint32_t>(
                                     ctx.tid() * 100 + round));
            ctx.barrier(bar);
            std::uint32_t v;
            ctx.stackPop(stack, v);
            if (round == 2) {
                if (ctx.tid() == 0)
                    ctx.flagSet(flag);
                else
                    ctx.flagWait(flag);
            }
            ctx.barrier(bar);
        }
    }
};

EngineOutcome
runChaotic(int threads, int level, std::uint64_t seed)
{
    MixedWorkload w(threads, SuiteVersion::Splash4);
    SimOptions options;
    options.chaos = chaosPreset(level, seed);
    options.watchdog.enabled = true;
    SimEngine engine(w.world, machineProfile("test4"), options);
    return engine.run([&](Context& ctx) { w.body(ctx); });
}

TEST(Chaos, SameSeedIsBitIdenticalAtEveryLevel)
{
    for (int level = 1; level <= 3; ++level) {
        const auto first = runChaotic(8, level, 0xDEADBEEF);
        EXPECT_EQ(first.status, RunStatus::Ok) << "level " << level;
        for (int rep = 0; rep < 3; ++rep) {
            const auto again = runChaotic(8, level, 0xDEADBEEF);
            EXPECT_EQ(again.makespan, first.makespan)
                << "level " << level;
            EXPECT_EQ(again.lineTransfers, first.lineTransfers)
                << "level " << level;
        }
    }
}

TEST(Chaos, DifferentSeedsPerturbDifferently)
{
    std::set<VTime> makespans;
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        makespans.insert(runChaotic(8, 3, seed).makespan);
    // Six seeds of storm-level injection must not all collapse onto
    // one schedule.
    EXPECT_GT(makespans.size(), 1u);
}

TEST(Chaos, InjectionCostsVirtualTime)
{
    MixedWorkload clean(8, SuiteVersion::Splash4);
    SimEngine cleanEngine(clean.world, machineProfile("test4"));
    const auto baseline =
        cleanEngine.run([&](Context& ctx) { clean.body(ctx); });

    const auto stormy = runChaotic(8, 3, 42);
    EXPECT_EQ(stormy.status, RunStatus::Ok);
    // Forced retries, injected delays, and skewed starts all charge
    // cycles; a storm run can only be slower than the clean one.
    EXPECT_GT(stormy.makespan, baseline.makespan);
}

class ChaosBenchmarks : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { registerAllBenchmarks(); }
};

TEST_F(ChaosBenchmarks, KernelsVerifyUnderStorm)
{
    for (const char* name : {"fft", "radix", "lu"}) {
        RunConfig config;
        config.threads = 4;
        config.engine = EngineKind::Sim;
        config.suite = SuiteVersion::Splash4;
        config.profile = "test4";
        config.chaos = chaosPreset(3, 0xFEED);
        config.watchdog.enabled = true;
        RunResult result = runBenchmark(name, config);
        EXPECT_EQ(result.status, RunStatus::Ok) << name;
        EXPECT_TRUE(result.verified)
            << name << ": " << result.verifyMessage;
    }
}

TEST(Chaos, PresetsScaleWithLevel)
{
    EXPECT_FALSE(chaosPreset(0, 1).enabled);
    const auto mild = chaosPreset(1, 1);
    const auto aggressive = chaosPreset(2, 1);
    const auto storm = chaosPreset(3, 1);
    EXPECT_TRUE(mild.enabled);
    EXPECT_LT(mild.casFailProb, aggressive.casFailProb);
    EXPECT_LT(aggressive.casFailProb, storm.casFailProb);
    EXPECT_LT(mild.syncDelayMax, storm.syncDelayMax);
    EXPECT_EQ(storm.seed, 1u);
}

TEST(Chaos, WatchdogExitCodesRoundTrip)
{
    for (const RunStatus status :
         {RunStatus::Deadlock, RunStatus::Livelock, RunStatus::Timeout,
          RunStatus::Crash}) {
        EXPECT_EQ(watchdogExitStatus(watchdogExitCode(status)), status);
    }
    EXPECT_EQ(watchdogExitStatus(0), RunStatus::Ok);
    EXPECT_EQ(watchdogExitStatus(1), RunStatus::Ok);
    EXPECT_EQ(watchdogExitStatus(139), RunStatus::Ok);
}

} // namespace
} // namespace splash
