#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "engine/engine.h"
#include "engine/native_engine.h"

namespace splash {
namespace {

class NativeEngineTest
    : public ::testing::TestWithParam<SuiteVersion>
{
};

TEST_P(NativeEngineTest, BarrierSeparatesPhases)
{
    World world(4, GetParam());
    auto bar = world.createBarrier();
    std::vector<int> phase(4, 0);

    NativeEngine engine(world);
    auto outcome = engine.run([&](Context& ctx) {
        phase[ctx.tid()] = 1;
        ctx.barrier(bar);
        for (int t = 0; t < 4; ++t)
            EXPECT_EQ(phase[t], 1);
        ctx.barrier(bar);
        phase[ctx.tid()] = 2;
    });
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(phase[t], 2);
    EXPECT_EQ(outcome.perThread.size(), 4u);
    EXPECT_EQ(outcome.perThread[0].barrierCrossings, 2u);
}

TEST_P(NativeEngineTest, TicketsDispenseDisjointRanges)
{
    World world(4, GetParam());
    auto ticket = world.createTicket();
    std::vector<std::vector<std::uint64_t>> got(4);

    NativeEngine engine(world);
    engine.run([&](Context& ctx) {
        for (int i = 0; i < 1000; ++i)
            got[ctx.tid()].push_back(ctx.ticketNext(ticket));
    });
    std::vector<std::uint64_t> all;
    for (auto& v : got)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], i);
}

TEST_P(NativeEngineTest, SumAccumulatesExactly)
{
    World world(4, GetParam());
    auto sum = world.createSum(0.0);
    auto bar = world.createBarrier();

    NativeEngine engine(world);
    double readback = -1.0;
    engine.run([&](Context& ctx) {
        for (int i = 0; i < 500; ++i)
            ctx.sumAdd(sum, 1.0);
        ctx.barrier(bar);
        if (ctx.tid() == 0)
            readback = ctx.sumRead(sum);
    });
    EXPECT_DOUBLE_EQ(readback, 2000.0);
}

TEST_P(NativeEngineTest, LocksProvideMutualExclusion)
{
    World world(4, GetParam());
    auto lock = world.createLock();
    long counter = 0;

    NativeEngine engine(world);
    engine.run([&](Context& ctx) {
        for (int i = 0; i < 2000; ++i) {
            ctx.lockAcquire(lock);
            ++counter;
            ctx.lockRelease(lock);
        }
    });
    EXPECT_EQ(counter, 8000);
}

TEST_P(NativeEngineTest, StackConservesValues)
{
    World world(4, GetParam());
    auto stack = world.createStack(4000);

    NativeEngine engine(world);
    std::atomic<std::uint64_t> popped{0};
    engine.run([&](Context& ctx) {
        for (std::uint32_t i = 0; i < 1000; ++i)
            ctx.stackPush(stack, ctx.tid() * 1000 + i);
        std::uint32_t v;
        while (ctx.stackPop(stack, v))
            ++popped;
    });
    EXPECT_EQ(popped.load(), 4000u);
}

TEST_P(NativeEngineTest, FlagsReleaseWaiters)
{
    World world(3, GetParam());
    auto flag = world.createFlag();
    std::atomic<int> observed{0};

    NativeEngine engine(world);
    engine.run([&](Context& ctx) {
        if (ctx.tid() == 0) {
            ctx.flagSet(flag);
        } else {
            ctx.flagWait(flag);
            ++observed;
        }
    });
    EXPECT_EQ(observed.load(), 2);
}

TEST_P(NativeEngineTest, WorkCountsUnits)
{
    World world(2, GetParam());
    NativeEngine engine(world);
    auto outcome = engine.run([&](Context& ctx) {
        ctx.work(100);
        ctx.work(23);
    });
    EXPECT_EQ(outcome.perThread[0].workUnits, 123u);
    EXPECT_EQ(outcome.perThread[1].workUnits, 123u);
}

INSTANTIATE_TEST_SUITE_P(BothSuites, NativeEngineTest,
                         ::testing::Values(SuiteVersion::Splash3,
                                           SuiteVersion::Splash4),
                         [](const auto& param_info) {
                             return param_info.param == SuiteVersion::Splash3
                                        ? "splash3"
                                        : "splash4";
                         });

} // namespace
} // namespace splash
