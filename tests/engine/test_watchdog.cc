/**
 * @file
 * Watchdog classification fixtures: planted deadlocks, livelocks, and
 * budget blowouts must come back as structured RunStatus values (sim)
 * or the documented watchdog exit codes (native death tests) instead
 * of hanging the process.
 */

#include <gtest/gtest.h>

#include "core/chaos.h"
#include "engine/engine.h"
#include "engine/native_engine.h"
#include "engine/sim_engine.h"
#include "sim/machine.h"

namespace splash {
namespace {

const MachineProfile&
prof()
{
    return machineProfile("test4");
}

TEST(Watchdog, SimDeadlockClassifiedWithTraceDump)
{
    World world(2, SuiteVersion::Splash4);
    auto lock = world.createLock();
    SimOptions options;
    options.watchdog.enabled = true;
    SimEngine engine(world, prof(), options);
    auto outcome = engine.run([&](Context& ctx) {
        if (ctx.tid() == 0) {
            ctx.lockAcquire(lock);
        } else {
            ctx.work(100);
            ctx.lockAcquire(lock);
        }
    });
    EXPECT_EQ(outcome.status, RunStatus::Deadlock);
    // With the watchdog attached the dump carries each thread's recent
    // sync trace for post-mortem debugging.
    EXPECT_NE(outcome.statusDetail.find("lock-acq"), std::string::npos)
        << outcome.statusDetail;
}

TEST(Watchdog, SimLivelockBudgetClassified)
{
    World world(2, SuiteVersion::Splash4);
    auto ticket = world.createTicket();
    SimOptions options;
    options.watchdog.enabled = true;
    options.watchdog.maxSyncOps = 5000;
    SimEngine engine(world, prof(), options);
    // Sync ops keep flowing but the run never ends: a livelock.
    auto outcome = engine.run([&](Context& ctx) {
        for (;;)
            ctx.ticketNext(ticket);
    });
    EXPECT_EQ(outcome.status, RunStatus::Livelock);
    EXPECT_NE(outcome.statusDetail.find("sync-op budget"),
              std::string::npos)
        << outcome.statusDetail;
}

TEST(Watchdog, SimVirtualTimeBudgetClassified)
{
    World world(2, SuiteVersion::Splash4);
    auto ticket = world.createTicket();
    SimOptions options;
    options.watchdog.enabled = true;
    options.watchdog.maxVirtualCycles = 10'000'000;
    SimEngine engine(world, prof(), options);
    auto outcome = engine.run([&](Context& ctx) {
        for (;;) {
            ctx.work(1'000'000);
            ctx.ticketNext(ticket);
        }
    });
    EXPECT_EQ(outcome.status, RunStatus::Timeout);
    EXPECT_NE(outcome.statusDetail.find("virtual-time budget"),
              std::string::npos)
        << outcome.statusDetail;
}

TEST(Watchdog, SimCleanRunUnaffectedByBudgets)
{
    World world(4, SuiteVersion::Splash4);
    auto bar = world.createBarrier();
    SimOptions options;
    options.watchdog.enabled = true;
    SimEngine engine(world, prof(), options);
    auto outcome = engine.run([&](Context& ctx) {
        for (int i = 0; i < 10; ++i) {
            ctx.work(100);
            ctx.barrier(bar);
        }
    });
    EXPECT_EQ(outcome.status, RunStatus::Ok);
    EXPECT_TRUE(outcome.statusDetail.empty());
}

TEST(Watchdog, NativeFrozenHangExitsAsDeadlock)
{
    // FLAGS_ spelling: works on googletest back to 1.10, unlike the
    // GTEST_FLAG_SET macro (1.12+).
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Thread 1 spins on a flag nobody sets: progress freezes and the
    // wall watchdog must terminate the process with the Deadlock exit
    // code instead of hanging the suite.
    EXPECT_EXIT(
        {
            World world(2, SuiteVersion::Splash4);
            auto flag = world.createFlag();
            NativeOptions options;
            options.watchdog.enabled = true;
            options.watchdog.maxWallSeconds = 1.0;
            NativeEngine engine(world, options);
            engine.run([&](Context& ctx) {
                if (ctx.tid() == 1)
                    ctx.flagWait(flag);
            });
        },
        ::testing::ExitedWithCode(
            watchdogExitCode(RunStatus::Deadlock)),
        "watchdog");
}

TEST(Watchdog, NativeBusyHangExitsAsLivelock)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Sync operations keep completing forever: the watchdog sees the
    // progress counter still moving and classifies a livelock.
    EXPECT_EXIT(
        {
            World world(2, SuiteVersion::Splash4);
            auto ticket = world.createTicket();
            NativeOptions options;
            options.watchdog.enabled = true;
            options.watchdog.maxWallSeconds = 1.0;
            NativeEngine engine(world, options);
            engine.run([&](Context& ctx) {
                for (;;)
                    ctx.ticketNext(ticket);
            });
        },
        ::testing::ExitedWithCode(
            watchdogExitCode(RunStatus::Livelock)),
        "watchdog");
}

} // namespace
} // namespace splash
