#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/native_engine.h"

namespace splash {
namespace {

TEST(NativeStats, BarrierWaitTimeIsMeasured)
{
    // One thread sleeps in compute before arriving; the other's
    // barrier wait must register nanoseconds.
    World world(2, SuiteVersion::Splash3);
    auto bar = world.createBarrier();
    NativeEngine engine(world);
    auto outcome = engine.run([&](Context& ctx) {
        if (ctx.tid() == 0) {
            // Busy delay so thread 1 measurably waits.
            volatile double acc = 0;
            for (int i = 0; i < 2000000; ++i)
                acc = acc + 1.0;
        }
        ctx.barrier(bar);
    });
    const auto barrier_ns =
        outcome.perThread[0]
            .categoryCycles[static_cast<int>(TimeCategory::Barrier)] +
        outcome.perThread[1]
            .categoryCycles[static_cast<int>(TimeCategory::Barrier)];
    EXPECT_GT(barrier_ns, 0u);
}

TEST(NativeStats, WallTimeIsPositive)
{
    World world(2, SuiteVersion::Splash4);
    NativeEngine engine(world);
    auto outcome = engine.run([&](Context& ctx) { ctx.work(10); });
    EXPECT_GT(outcome.wallSeconds, 0.0);
    EXPECT_EQ(outcome.makespan, 0u); // native engine has no sim clock
}

TEST(NativeStats, LineTransfersZeroNatively)
{
    // The coherence-traffic statistic is a model quantity; the native
    // engine reports zero rather than a bogus number.
    World world(2, SuiteVersion::Splash4);
    auto sum = world.createSum();
    NativeEngine engine(world);
    auto outcome = engine.run([&](Context& ctx) {
        ctx.sumAdd(sum, 1.0);
    });
    EXPECT_EQ(outcome.lineTransfers, 0u);
}

} // namespace
} // namespace splash
