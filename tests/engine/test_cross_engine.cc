#include <gtest/gtest.h>

#include "engine/engine.h"
#include "harness/suite.h"

namespace splash {
namespace {

/**
 * The two engines execute the same benchmark code; deterministic
 * observable properties (verification, barrier counts, work units)
 * must agree between them.
 */
class CrossEngineTest : public ::testing::TestWithParam<const char*>
{
  protected:
    static void SetUpTestSuite() { registerAllBenchmarks(); }

    RunResult
    runWith(EngineKind engine)
    {
        RunConfig config;
        config.threads = 4;
        config.suite = SuiteVersion::Splash4;
        config.engine = engine;
        config.profile = "test4";
        // Small deterministic inputs per benchmark.
        config.params.set("keys", std::int64_t{2048});
        config.params.set("bits", std::int64_t{4});
        config.params.set("points", std::int64_t{1024});
        config.params.set("size", std::int64_t{64});
        config.params.set("block", std::int64_t{8});
        config.params.set("grid", std::int64_t{32});
        config.params.set("bodies", std::int64_t{128});
        config.params.set("steps", std::int64_t{1});
        config.params.set("molecules", std::int64_t{64});
        config.params.set("particles", std::int64_t{128});
        config.params.set("levels", std::int64_t{2});
        config.params.set("patches", std::int64_t{3});
        config.params.set("width", std::int64_t{32});
        config.params.set("height", std::int64_t{32});
        config.params.set("volume", std::int64_t{16});
        config.params.set("spheres", std::int64_t{6});
        return runBenchmark(GetParam(), config);
    }
};

TEST_P(CrossEngineTest, BothEnginesVerify)
{
    const RunResult sim = runWith(EngineKind::Sim);
    const RunResult native = runWith(EngineKind::Native);
    EXPECT_TRUE(sim.verified) << sim.verifyMessage;
    EXPECT_TRUE(native.verified) << native.verifyMessage;
}

TEST_P(CrossEngineTest, BarrierCountsMatch)
{
    if (std::string(GetParam()) == "ocean") {
        // Ocean's sweep count depends on a floating-point reduction
        // whose accumulation order is engine-dependent; the crossing
        // count may legitimately differ by a sweep.
        GTEST_SKIP();
    }
    // Barrier crossings per run are schedule-independent for the
    // fixed-iteration workloads.
    const RunResult sim = runWith(EngineKind::Sim);
    const RunResult native = runWith(EngineKind::Native);
    EXPECT_EQ(sim.totals.barrierCrossings,
              native.totals.barrierCrossings);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, CrossEngineTest,
    ::testing::Values("radix", "fft", "lu", "ocean", "water-nsquared",
                      "water-spatial", "raytrace", "volrend", "fmm"),
    [](const auto& param_info) {
        std::string name = param_info.param;
        for (auto& ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
} // namespace splash
