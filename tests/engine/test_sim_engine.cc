#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "engine/engine.h"
#include "engine/sim_engine.h"
#include "sim/machine.h"

namespace splash {
namespace {

class SimEngineTest : public ::testing::TestWithParam<SuiteVersion>
{
  protected:
    const MachineProfile& prof_ = machineProfile("test4");
};

TEST_P(SimEngineTest, BarrierSeparatesPhases)
{
    World world(4, GetParam());
    auto bar = world.createBarrier();
    std::vector<int> phase(4, 0);

    SimEngine engine(world, prof_);
    auto outcome = engine.run([&](Context& ctx) {
        phase[ctx.tid()] = 1;
        ctx.barrier(bar);
        for (int t = 0; t < 4; ++t)
            EXPECT_EQ(phase[t], 1);
        ctx.barrier(bar);
        phase[ctx.tid()] = 2;
    });
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(phase[t], 2);
    EXPECT_GT(outcome.makespan, 0u);
}

TEST_P(SimEngineTest, TicketsDispenseDisjointRanges)
{
    World world(4, GetParam());
    auto ticket = world.createTicket();
    std::vector<std::uint64_t> all;

    SimEngine engine(world, prof_);
    auto bar = world.createBarrier();
    std::vector<std::vector<std::uint64_t>> got(4);
    engine.run([&](Context& ctx) {
        for (int i = 0; i < 100; ++i)
            got[ctx.tid()].push_back(ctx.ticketNext(ticket));
        ctx.barrier(bar);
    });
    for (auto& v : got)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], i);
}

TEST_P(SimEngineTest, SumAccumulatesExactly)
{
    World world(4, GetParam());
    auto sum = world.createSum(1.5);
    auto bar = world.createBarrier();

    SimEngine engine(world, prof_);
    double readback = -1.0;
    engine.run([&](Context& ctx) {
        for (int i = 0; i < 100; ++i)
            ctx.sumAdd(sum, 0.5);
        ctx.barrier(bar);
        if (ctx.tid() == 0)
            readback = ctx.sumRead(sum);
    });
    EXPECT_DOUBLE_EQ(readback, 1.5 + 4 * 100 * 0.5);
}

TEST_P(SimEngineTest, LockMutualExclusionAndFairness)
{
    World world(4, GetParam());
    auto lock = world.createLock();
    long counter = 0;

    SimEngine engine(world, prof_);
    engine.run([&](Context& ctx) {
        for (int i = 0; i < 200; ++i) {
            ctx.lockAcquire(lock);
            ++counter;
            ctx.lockRelease(lock);
        }
    });
    EXPECT_EQ(counter, 800);
}

TEST_P(SimEngineTest, FlagsReleaseWaiters)
{
    World world(3, GetParam());
    auto flag = world.createFlag();
    int observed = 0;

    SimEngine engine(world, prof_);
    engine.run([&](Context& ctx) {
        if (ctx.tid() == 0) {
            ctx.work(500); // make waiters arrive first
            ctx.flagSet(flag);
        } else {
            ctx.flagWait(flag);
            ++observed;
        }
    });
    EXPECT_EQ(observed, 2);
}

TEST_P(SimEngineTest, FlagAlreadySetDoesNotBlock)
{
    World world(2, GetParam());
    auto flag = world.createFlag();
    auto bar = world.createBarrier();

    SimEngine engine(world, prof_);
    engine.run([&](Context& ctx) {
        if (ctx.tid() == 0)
            ctx.flagSet(flag);
        ctx.barrier(bar);
        ctx.flagWait(flag); // set before the barrier: must not block
    });
    SUCCEED();
}

TEST_P(SimEngineTest, WorkAdvancesVirtualTime)
{
    World world(1, GetParam());
    SimEngine engine(world, prof_);
    auto outcome = engine.run([&](Context& ctx) { ctx.work(12345); });
    EXPECT_EQ(outcome.makespan, 12345u * prof_.workUnitCycles);
}

TEST_P(SimEngineTest, StackConservesValues)
{
    World world(4, GetParam());
    auto stack = world.createStack(400);
    auto bar = world.createBarrier();
    int popped = 0;

    SimEngine engine(world, prof_);
    engine.run([&](Context& ctx) {
        for (std::uint32_t i = 0; i < 100; ++i)
            ctx.stackPush(stack, ctx.tid() * 100 + i);
        ctx.barrier(bar);
        std::uint32_t v;
        while (ctx.stackPop(stack, v))
            ++popped;
    });
    EXPECT_EQ(popped, 400);
}

TEST_P(SimEngineTest, MakespanGrowsWithSerializedContention)
{
    // 4 threads hammering one sum must take longer than 1 thread doing
    // a quarter of the ops: contention serializes on the line.
    auto run_with = [&](int threads, int ops) {
        World world(threads, GetParam());
        auto sum = world.createSum();
        SimEngine engine(world, prof_);
        return engine
            .run([&](Context& ctx) {
                for (int i = 0; i < ops; ++i)
                    ctx.sumAdd(sum, 1.0);
            })
            .makespan;
    };
    const VTime serial = run_with(1, 100);
    const VTime contended = run_with(4, 100);
    EXPECT_GT(contended, serial);
}

INSTANTIATE_TEST_SUITE_P(BothSuites, SimEngineTest,
                         ::testing::Values(SuiteVersion::Splash3,
                                           SuiteVersion::Splash4),
                         [](const auto& param_info) {
                             return param_info.param == SuiteVersion::Splash3
                                        ? "splash3"
                                        : "splash4";
                         });

TEST(SimEngineModel, Splash4BarrierCheaperAtScale)
{
    auto barrier_cost = [](SuiteVersion suite) {
        World world(16, suite);
        auto bar = world.createBarrier();
        SimEngine engine(world, machineProfile("epyc64"));
        return engine
            .run([&](Context& ctx) {
                for (int i = 0; i < 10; ++i)
                    ctx.barrier(bar);
            })
            .makespan;
    };
    EXPECT_LT(barrier_cost(SuiteVersion::Splash4),
              barrier_cost(SuiteVersion::Splash3));
}

TEST(SimEngineModel, Splash4ReductionCheaperAtScale)
{
    auto cost = [](SuiteVersion suite) {
        World world(16, suite);
        auto sum = world.createSum();
        SimEngine engine(world, machineProfile("epyc64"));
        return engine
            .run([&](Context& ctx) {
                for (int i = 0; i < 50; ++i)
                    ctx.sumAdd(sum, 1.0);
            })
            .makespan;
    };
    EXPECT_LT(cost(SuiteVersion::Splash4), cost(SuiteVersion::Splash3));
}

} // namespace
} // namespace splash
