#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/sync_profile.h"
#include "core/types.h"
#include "engine/engine.h"
#include "harness/suite.h"

namespace splash {
namespace {

/**
 * Small deterministic inputs for every suite workload (the same set
 * the cross-engine tests use), on the native engine.
 */
RunConfig
nativeConfig(int threads)
{
    RunConfig config;
    config.threads = threads;
    config.suite = SuiteVersion::Splash4;
    config.engine = EngineKind::Native;
    config.params.set("keys", std::int64_t{2048});
    config.params.set("bits", std::int64_t{4});
    config.params.set("points", std::int64_t{1024});
    config.params.set("size", std::int64_t{64});
    config.params.set("block", std::int64_t{8});
    config.params.set("grid", std::int64_t{32});
    config.params.set("bodies", std::int64_t{128});
    config.params.set("steps", std::int64_t{1});
    config.params.set("molecules", std::int64_t{64});
    config.params.set("particles", std::int64_t{128});
    config.params.set("levels", std::int64_t{2});
    config.params.set("patches", std::int64_t{3});
    config.params.set("width", std::int64_t{32});
    config.params.set("height", std::int64_t{32});
    config.params.set("volume", std::int64_t{16});
    config.params.set("spheres", std::int64_t{6});
    return config;
}

class FastPathParityTest : public ::testing::TestWithParam<const char*>
{
  protected:
    static void SetUpTestSuite() { registerAllBenchmarks(); }
};

/**
 * One thread makes both native paths fully deterministic, so every
 * observable must agree bit-for-bit: the validation checksum embedded
 * in verifyMessage, each ThreadStats op count, and the Sync-Scope
 * per-construct ops/attempts/retries.  This is the contract that lets
 * --fast-path=auto substitute the monomorphized path silently.
 */
TEST_P(FastPathParityTest, SingleThreadBitIdentical)
{
    RunConfig config = nativeConfig(1);
    config.syncProfile = true;
    config.fastPath = FastPath::Off;
    const RunResult slow = runBenchmark(GetParam(), config);
    config.fastPath = FastPath::On;
    const RunResult fast = runBenchmark(GetParam(), config);

    EXPECT_TRUE(slow.verified) << slow.verifyMessage;
    EXPECT_TRUE(fast.verified) << fast.verifyMessage;
    EXPECT_EQ(slow.verifyMessage, fast.verifyMessage);

    EXPECT_EQ(slow.totals.barrierCrossings,
              fast.totals.barrierCrossings);
    EXPECT_EQ(slow.totals.lockAcquires, fast.totals.lockAcquires);
    EXPECT_EQ(slow.totals.ticketOps, fast.totals.ticketOps);
    EXPECT_EQ(slow.totals.sumOps, fast.totals.sumOps);
    EXPECT_EQ(slow.totals.stackOps, fast.totals.stackOps);
    EXPECT_EQ(slow.totals.flagOps, fast.totals.flagOps);
    EXPECT_EQ(slow.totals.workUnits, fast.totals.workUnits);

    ASSERT_NE(slow.syncProfile, nullptr);
    ASSERT_NE(fast.syncProfile, nullptr);
    ASSERT_EQ(slow.syncProfile->constructs.size(),
              fast.syncProfile->constructs.size());
    for (std::size_t i = 0; i < slow.syncProfile->constructs.size();
         ++i) {
        const ConstructProfile& v = slow.syncProfile->constructs[i];
        const ConstructProfile& f = fast.syncProfile->constructs[i];
        EXPECT_EQ(v.name, f.name);
        EXPECT_EQ(v.realization, f.realization) << v.name;
        EXPECT_EQ(v.ops, f.ops) << v.name;
        EXPECT_EQ(v.attempts, f.attempts) << v.name;
        EXPECT_EQ(v.retries, f.retries) << v.name;
    }
}

/**
 * With real concurrency the interleaving (and thus FP accumulation
 * order, CAS retry counts, work-stealing splits) is free to differ,
 * but both paths must still produce a verifying run.
 */
TEST_P(FastPathParityTest, FourThreadsBothVerify)
{
    RunConfig config = nativeConfig(4);
    config.fastPath = FastPath::Off;
    const RunResult slow = runBenchmark(GetParam(), config);
    config.fastPath = FastPath::On;
    const RunResult fast = runBenchmark(GetParam(), config);
    EXPECT_TRUE(slow.verified) << slow.verifyMessage;
    EXPECT_TRUE(fast.verified) << fast.verifyMessage;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, FastPathParityTest,
    ::testing::Values("barnes", "cholesky", "fft", "fmm", "lu",
                      "ocean", "radiosity", "radix", "raytrace",
                      "volrend", "water-nsquared", "water-spatial"),
    [](const auto& param_info) {
        std::string name = param_info.param;
        for (auto& ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

/** A benchmark that never opted into the monomorphized path. */
class VirtualOnlyBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "virtual-only"; }
    std::string description() const override { return "test"; }
    std::string inputDescription() const override { return "-"; }
    void setup(World&, const Params&) override {}
    void run(Context& ctx) override { ctx.work(1); }
    bool
    verify(std::string& message) override
    {
        message = "ok";
        return true;
    }
};

class FastPathDeathTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { registerAllBenchmarks(); }
};

TEST_F(FastPathDeathTest, OnWithRaceCheckIsRejected)
{
    RunConfig config = nativeConfig(2);
    config.fastPath = FastPath::On;
    config.raceCheck = true;
    EXPECT_EXIT(runBenchmark("fft", config),
                ::testing::ExitedWithCode(1),
                "incompatible with --race-check");
}

TEST_F(FastPathDeathTest, OnWithSimEngineIsRejected)
{
    RunConfig config = nativeConfig(2);
    config.engine = EngineKind::Sim;
    config.fastPath = FastPath::On;
    EXPECT_EXIT(runBenchmark("fft", config),
                ::testing::ExitedWithCode(1),
                "requires --engine=native");
}

TEST_F(FastPathDeathTest, OnWithVirtualOnlyBenchmarkIsRejected)
{
    VirtualOnlyBenchmark benchmark;
    RunConfig config = nativeConfig(2);
    config.fastPath = FastPath::On;
    EXPECT_EXIT(runBenchmark(benchmark, config),
                ::testing::ExitedWithCode(1),
                "has no monomorphized kernel");
}

TEST_F(FastPathDeathTest, UnknownModeStringIsRejected)
{
    EXPECT_EXIT(parseFastPath("fast"), ::testing::ExitedWithCode(1),
                "unknown fast-path mode");
}

TEST(FastPathConfig, ParseAndPrintRoundTrip)
{
    EXPECT_EQ(parseFastPath("on"), FastPath::On);
    EXPECT_EQ(parseFastPath("off"), FastPath::Off);
    EXPECT_EQ(parseFastPath("auto"), FastPath::Auto);
    EXPECT_STREQ(toString(FastPath::On), "on");
    EXPECT_STREQ(toString(FastPath::Off), "off");
    EXPECT_STREQ(toString(FastPath::Auto), "auto");
}

/**
 * Auto quietly keeps virtual-only benchmarks on the abstract Context
 * -- the fallback half of the two-path contract.
 */
TEST(FastPathConfig, AutoFallsBackForVirtualOnlyBenchmark)
{
    VirtualOnlyBenchmark benchmark;
    RunConfig config = nativeConfig(2);
    config.fastPath = FastPath::Auto;
    const RunResult result = runBenchmark(benchmark, config);
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.totals.workUnits, 2u);
}

} // namespace
} // namespace splash
