#include <gtest/gtest.h>

#include "core/world.h"

namespace splash {
namespace {

TEST(World, HandlesIndexSequentially)
{
    World world(4, SuiteVersion::Splash4);
    auto b = world.createBarrier();
    auto l = world.createLock();
    auto t = world.createTicket();
    EXPECT_EQ(b.index, 0u);
    EXPECT_EQ(l.index, 1u);
    EXPECT_EQ(t.index, 2u);
    EXPECT_TRUE(b.valid());
    EXPECT_FALSE(BarrierHandle{}.valid());
}

TEST(World, DescriptorsMatchKinds)
{
    World world(2, SuiteVersion::Splash3);
    world.createBarrier();
    world.createLocks(3);
    world.createTickets(2);
    world.createSums(4, 1.5);
    world.createStack(16);
    world.createFlag();

    EXPECT_EQ(world.countOf(SyncObjKind::Barrier), 1u);
    EXPECT_EQ(world.countOf(SyncObjKind::Lock), 3u);
    EXPECT_EQ(world.countOf(SyncObjKind::Ticket), 2u);
    EXPECT_EQ(world.countOf(SyncObjKind::Sum), 4u);
    EXPECT_EQ(world.countOf(SyncObjKind::Stack), 1u);
    EXPECT_EQ(world.countOf(SyncObjKind::Flag), 1u);
    EXPECT_EQ(world.objects().size(), 12u);
}

TEST(World, SumInitialValueStored)
{
    World world(2, SuiteVersion::Splash4);
    auto s = world.createSum(3.25);
    EXPECT_DOUBLE_EQ(world.objects()[s.index].initialValue, 3.25);
}

TEST(World, AutoLockKindFollowsSuite)
{
    World s3(2, SuiteVersion::Splash3);
    auto l3 = s3.createLock(LockKind::Auto);
    EXPECT_EQ(s3.objects()[l3.index].lockKind, LockKind::Mutex);

    World s4(2, SuiteVersion::Splash4);
    auto l4 = s4.createLock(LockKind::Auto);
    EXPECT_EQ(s4.objects()[l4.index].lockKind, LockKind::Spin);
}

TEST(World, ExplicitLockKindPreserved)
{
    World world(2, SuiteVersion::Splash3);
    auto spin = world.createLock(LockKind::Spin);
    EXPECT_EQ(world.objects()[spin.index].lockKind, LockKind::Spin);
}

} // namespace
} // namespace splash
