#include <gtest/gtest.h>

#include "core/world.h"

namespace splash {
namespace {

TEST(World, HandlesIndexSequentially)
{
    World world(4, SuiteVersion::Splash4);
    auto b = world.createBarrier();
    auto l = world.createLock();
    auto t = world.createTicket();
    EXPECT_EQ(b.index, 0u);
    EXPECT_EQ(l.index, 1u);
    EXPECT_EQ(t.index, 2u);
    EXPECT_TRUE(b.valid());
    EXPECT_FALSE(BarrierHandle{}.valid());
}

TEST(World, DescriptorsMatchKinds)
{
    World world(2, SuiteVersion::Splash3);
    world.createBarrier();
    world.createLocks(3);
    world.createTickets(2);
    world.createSums(4, 1.5);
    world.createStack(16);
    world.createFlag();
    world.createQueue(8);
    world.createDeques(2, 4);

    EXPECT_EQ(world.countOf(SyncObjKind::Barrier), 1u);
    EXPECT_EQ(world.countOf(SyncObjKind::Lock), 3u);
    EXPECT_EQ(world.countOf(SyncObjKind::Ticket), 2u);
    EXPECT_EQ(world.countOf(SyncObjKind::Sum), 4u);
    EXPECT_EQ(world.countOf(SyncObjKind::Stack), 1u);
    EXPECT_EQ(world.countOf(SyncObjKind::Flag), 1u);
    EXPECT_EQ(world.countOf(SyncObjKind::Queue), 1u);
    EXPECT_EQ(world.countOf(SyncObjKind::Deque), 2u);
    EXPECT_EQ(world.objects().size(), 15u);
}

TEST(World, SumInitialValueStored)
{
    World world(2, SuiteVersion::Splash4);
    auto s = world.createSum(3.25);
    EXPECT_DOUBLE_EQ(world.objects()[s.index].initialValue, 3.25);
}

TEST(World, AutoLockKindFollowsSuite)
{
    World s3(2, SuiteVersion::Splash3);
    auto l3 = s3.createLock(LockKind::Auto);
    EXPECT_EQ(s3.objects()[l3.index].lockKind, LockKind::Mutex);

    World s4(2, SuiteVersion::Splash4);
    auto l4 = s4.createLock(LockKind::Auto);
    EXPECT_EQ(s4.objects()[l4.index].lockKind, LockKind::Spin);
}

TEST(World, ExplicitLockKindPreserved)
{
    World world(2, SuiteVersion::Splash3);
    auto spin = world.createLock(LockKind::Spin);
    EXPECT_EQ(world.objects()[spin.index].lockKind, LockKind::Spin);
}

TEST(World, LockRangeIsOneContiguousBulkAllocation)
{
    World world(2, SuiteVersion::Splash4);
    const auto before =
        static_cast<std::uint32_t>(world.objects().size());
    LockRange locks = world.createLockRange(100, LockKind::Auto);
    EXPECT_TRUE(locks.valid());
    EXPECT_EQ(locks.size(), 100u);
    EXPECT_EQ(world.objects().size(), before + 100u);
    EXPECT_EQ(locks[0].index, before);
    EXPECT_EQ(locks[99].index, before + 99u);
    EXPECT_EQ(world.countOf(SyncObjKind::Lock), 100u);
}

TEST(World, TicketAndSumRangesKeepPerObjectState)
{
    World world(2, SuiteVersion::Splash4);
    TicketRange tickets = world.createTicketRange(3);
    SumRange sums = world.createSumRange(2, 1.25);
    EXPECT_EQ(tickets.size(), 3u);
    EXPECT_EQ(sums.size(), 2u);
    EXPECT_DOUBLE_EQ(world.objects()[sums[1].index].initialValue,
                     1.25);
    EXPECT_EQ(world.countOf(SyncObjKind::Ticket), 3u);
    EXPECT_EQ(world.countOf(SyncObjKind::Sum), 2u);
}

TEST(World, DefaultHandleRangeIsInvalidAndEmpty)
{
    LockRange range;
    EXPECT_FALSE(range.valid());
    EXPECT_EQ(range.size(), 0u);
}

} // namespace
} // namespace splash
