#include <gtest/gtest.h>

#include "core/params.h"

namespace splash {
namespace {

TEST(Params, TypedRoundTrip)
{
    Params p;
    p.set("name", "value");
    p.set("count", std::int64_t{42});
    p.set("ratio", 0.5);
    EXPECT_EQ(p.get("name", ""), "value");
    EXPECT_EQ(p.getInt("count", 0), 42);
    EXPECT_DOUBLE_EQ(p.getDouble("ratio", 0.0), 0.5);
}

TEST(Params, FallbacksWhenMissing)
{
    Params p;
    EXPECT_EQ(p.get("absent", "dflt"), "dflt");
    EXPECT_EQ(p.getInt("absent", -7), -7);
    EXPECT_DOUBLE_EQ(p.getDouble("absent", 2.25), 2.25);
    EXPECT_FALSE(p.has("absent"));
}

TEST(Params, OverwriteKeepsLatest)
{
    Params p;
    p.set("k", std::int64_t{1});
    p.set("k", std::int64_t{2});
    EXPECT_EQ(p.getInt("k", 0), 2);
}

TEST(Params, DoublePreservesPrecision)
{
    Params p;
    p.set("x", 0.1234567890123456);
    EXPECT_DOUBLE_EQ(p.getDouble("x", 0.0), 0.1234567890123456);
}

TEST(Params, EntriesExposesAll)
{
    Params p;
    p.set("a", std::int64_t{1});
    p.set("b", "two");
    EXPECT_EQ(p.entries().size(), 2u);
}

} // namespace
} // namespace splash
