#include <gtest/gtest.h>

#include "core/stats.h"

namespace splash {
namespace {

TEST(Stats, MergeAccumulatesEverything)
{
    ThreadStats a, b;
    a.barrierCrossings = 3;
    a.lockAcquires = 5;
    a.ticketOps = 7;
    a.addCycles(TimeCategory::Compute, 100);
    b.barrierCrossings = 2;
    b.sumOps = 11;
    b.addCycles(TimeCategory::Compute, 50);
    b.addCycles(TimeCategory::Barrier, 30);

    a.merge(b);
    EXPECT_EQ(a.barrierCrossings, 5u);
    EXPECT_EQ(a.lockAcquires, 5u);
    EXPECT_EQ(a.ticketOps, 7u);
    EXPECT_EQ(a.sumOps, 11u);
    EXPECT_EQ(a.categoryCycles[0], 150u);
    EXPECT_EQ(a.categoryCycles[1], 30u);
}

TEST(Stats, AtomicOpsSumsLockFreeKinds)
{
    ThreadStats s;
    s.ticketOps = 1;
    s.sumOps = 2;
    s.stackOps = 3;
    s.flagOps = 4;
    EXPECT_EQ(s.atomicOps(), 10u);
}

TEST(Stats, CategoryFractionNormalizes)
{
    RunResult r;
    r.totals.addCycles(TimeCategory::Compute, 75);
    r.totals.addCycles(TimeCategory::Barrier, 25);
    EXPECT_DOUBLE_EQ(r.categoryFraction(TimeCategory::Compute), 0.75);
    EXPECT_DOUBLE_EQ(r.categoryFraction(TimeCategory::Barrier), 0.25);
    EXPECT_DOUBLE_EQ(r.categoryFraction(TimeCategory::Lock), 0.0);
}

TEST(Stats, CategoryFractionZeroWhenEmpty)
{
    RunResult r;
    EXPECT_DOUBLE_EQ(r.categoryFraction(TimeCategory::Compute), 0.0);
}

TEST(Stats, CategoryNames)
{
    EXPECT_STREQ(toString(TimeCategory::Compute), "compute");
    EXPECT_STREQ(toString(TimeCategory::Barrier), "barrier");
    EXPECT_STREQ(toString(TimeCategory::Lock), "lock");
    EXPECT_STREQ(toString(TimeCategory::Atomic), "atomic");
    EXPECT_STREQ(toString(TimeCategory::Flag), "flag");
}

} // namespace
} // namespace splash
