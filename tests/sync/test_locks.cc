#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sync/spinlock.h"

namespace splash {
namespace {

/** Increment a plain counter under the lock; total must be exact. */
template <typename LockT>
void
mutualExclusionTest(int nthreads, int iterations)
{
    LockT lock;
    long counter = 0;
    auto body = [&] {
        for (int i = 0; i < iterations; ++i) {
            lock.lock();
            ++counter;
            lock.unlock();
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t)
        threads.emplace_back(body);
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(counter, static_cast<long>(nthreads) * iterations);
}

TEST(TasLock, MutualExclusion) { mutualExclusionTest<TasLock>(4, 2000); }

TEST(TtasLock, MutualExclusion)
{
    mutualExclusionTest<TtasLock>(4, 2000);
}

TEST(TicketLock, MutualExclusion)
{
    mutualExclusionTest<TicketLock>(4, 2000);
}

TEST(McsLock, MutualExclusion) { mutualExclusionTest<McsLock>(4, 2000); }

TEST(TasLock, TryLockWhenFree)
{
    TasLock lock;
    EXPECT_TRUE(lock.tryLock());
    EXPECT_FALSE(lock.tryLock());
    lock.unlock();
    EXPECT_TRUE(lock.tryLock());
    lock.unlock();
}

TEST(TtasLock, TryLockWhenFree)
{
    TtasLock lock;
    EXPECT_TRUE(lock.tryLock());
    EXPECT_FALSE(lock.tryLock());
    lock.unlock();
}

TEST(McsLock, NestedDistinctLocks)
{
    McsLock a, b;
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
    // Re-lock to make sure nodes were recycled.
    a.lock();
    a.unlock();
}

TEST(TicketLock, FairHandoffSingleThread)
{
    TicketLock lock;
    for (int i = 0; i < 100; ++i) {
        lock.lock();
        lock.unlock();
    }
}

} // namespace
} // namespace splash
