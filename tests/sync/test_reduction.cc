#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sync/atomic_reduction.h"

namespace splash {
namespace {

TEST(AtomicAddDouble, SingleThreadExact)
{
    std::atomic<double> v{0.0};
    for (int i = 1; i <= 100; ++i)
        atomicAddDouble(v, static_cast<double>(i));
    EXPECT_DOUBLE_EQ(v.load(), 5050.0);
}

TEST(AtomicAddDouble, ReturnsPreviousValue)
{
    std::atomic<double> v{1.5};
    EXPECT_DOUBLE_EQ(atomicAddDouble(v, 2.0), 1.5);
    EXPECT_DOUBLE_EQ(v.load(), 3.5);
}

TEST(AtomicAddDouble, ConcurrentSumExact)
{
    std::atomic<double> v{0.0};
    const int nthreads = 4, iters = 5000;
    auto body = [&] {
        for (int i = 0; i < iters; ++i)
            atomicAddDouble(v, 1.0);
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t)
        threads.emplace_back(body);
    for (auto& t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(v.load(), nthreads * static_cast<double>(iters));
}

TEST(AtomicMinMax, TrackExtrema)
{
    std::atomic<double> lo{1e300}, hi{-1e300};
    const double values[] = {3.0, -7.5, 12.0, 0.0, -7.4};
    for (double v : values) {
        atomicMinDouble(lo, v);
        atomicMaxDouble(hi, v);
    }
    EXPECT_DOUBLE_EQ(lo.load(), -7.5);
    EXPECT_DOUBLE_EQ(hi.load(), 12.0);
}

TEST(AtomicMinMax, NoChangeWhenNotExtreme)
{
    std::atomic<double> lo{-1.0};
    atomicMinDouble(lo, 5.0);
    EXPECT_DOUBLE_EQ(lo.load(), -1.0);
}

TEST(LockedAccumulator, MatchesAtomicAccumulator)
{
    LockedAccumulator<> locked(10.0);
    AtomicAccumulator atomic(10.0);
    for (int i = 0; i < 100; ++i) {
        locked.add(0.5 * i);
        atomic.add(0.5 * i);
    }
    EXPECT_DOUBLE_EQ(locked.get(), atomic.get());
}

TEST(LockedAccumulator, ConcurrentSumExact)
{
    LockedAccumulator<> acc;
    const int nthreads = 4, iters = 5000;
    auto body = [&] {
        for (int i = 0; i < iters; ++i)
            acc.add(1.0);
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t)
        threads.emplace_back(body);
    for (auto& t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(acc.get(), nthreads * static_cast<double>(iters));
}

TEST(PaddedAccumulator, CombineSumsSlots)
{
    PaddedAccumulator acc(4);
    acc.add(0, 1.0);
    acc.add(1, 2.0);
    acc.add(2, 3.0);
    acc.add(3, 4.0);
    acc.add(0, 0.5);
    EXPECT_DOUBLE_EQ(acc.combine(), 10.5);
    acc.reset();
    EXPECT_DOUBLE_EQ(acc.combine(), 0.0);
}

TEST(AtomicAccumulator, ResetToValue)
{
    AtomicAccumulator acc(3.0);
    acc.add(1.0);
    acc.reset(7.0);
    EXPECT_DOUBLE_EQ(acc.get(), 7.0);
}

} // namespace
} // namespace splash
