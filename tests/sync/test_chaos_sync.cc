/**
 * @file
 * Forced CAS-failure storms: every lock-free primitive must stay
 * correct when a seeded majority of its CAS/RMW attempts are forced
 * onto the retry path by the sync_chaos hook.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "sync/atomic_reduction.h"
#include "sync/chaos_hook.h"
#include "sync/lockfree_stack.h"
#include "sync/spinlock.h"

namespace splash {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 5000;

/** Storm fixture: 60% of CAS attempts forced to fail, seeded. */
class ChaosSyncTest : public ::testing::Test
{
  protected:
    void SetUp() override { sync_chaos::configure(0xC0FFEE, 600); }
    void TearDown() override { sync_chaos::reset(); }

    template <typename Fn>
    void
    inParallel(Fn&& fn)
    {
        std::vector<std::thread> threads;
        for (int tid = 0; tid < kThreads; ++tid)
            threads.emplace_back([&fn, tid] { fn(tid); });
        for (auto& t : threads)
            t.join();
    }
};

TEST_F(ChaosSyncTest, AtomicAddExactUnderStorm)
{
    std::atomic<double> sum{0.0};
    inParallel([&](int) {
        for (int i = 0; i < kOpsPerThread; ++i)
            atomicAddDouble(sum, 1.0);
    });
    EXPECT_EQ(sum.load(), double(kThreads) * kOpsPerThread);
}

TEST_F(ChaosSyncTest, AtomicMinMaxExactUnderStorm)
{
    std::atomic<double> lo{1e30};
    std::atomic<double> hi{-1e30};
    inParallel([&](int tid) {
        for (int i = 0; i < kOpsPerThread; ++i) {
            const double v = tid * kOpsPerThread + i;
            atomicMinDouble(lo, v);
            atomicMaxDouble(hi, v);
        }
    });
    EXPECT_EQ(lo.load(), 0.0);
    EXPECT_EQ(hi.load(), double(kThreads) * kOpsPerThread - 1);
}

TEST_F(ChaosSyncTest, LockFreeStackPreservesValuesUnderStorm)
{
    LockFreeStack stack(kThreads * kOpsPerThread);
    inParallel([&](int tid) {
        for (int i = 0; i < kOpsPerThread; ++i) {
            ASSERT_TRUE(stack.push(static_cast<std::uint32_t>(
                tid * kOpsPerThread + i)));
        }
    });

    std::vector<std::vector<std::uint32_t>> popped(kThreads);
    inParallel([&](int tid) {
        std::uint32_t v;
        for (int i = 0; i < kOpsPerThread; ++i) {
            ASSERT_TRUE(stack.pop(v));
            popped[tid].push_back(v);
        }
    });

    std::vector<std::uint32_t> all;
    for (const auto& part : popped)
        all.insert(all.end(), part.begin(), part.end());
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(),
              static_cast<std::size_t>(kThreads) * kOpsPerThread);
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], i) << "value lost or duplicated";
    std::uint32_t v;
    EXPECT_FALSE(stack.pop(v));
}

TEST_F(ChaosSyncTest, TasLockMutualExclusionUnderStorm)
{
    TasLock lock;
    long long counter = 0;
    inParallel([&](int) {
        for (int i = 0; i < kOpsPerThread; ++i) {
            lock.lock();
            ++counter;
            lock.unlock();
        }
    });
    EXPECT_EQ(counter, static_cast<long long>(kThreads) * kOpsPerThread);
}

TEST_F(ChaosSyncTest, TtasLockMutualExclusionUnderStorm)
{
    TtasLock lock;
    long long counter = 0;
    inParallel([&](int) {
        for (int i = 0; i < kOpsPerThread; ++i) {
            lock.lock();
            ++counter;
            lock.unlock();
        }
    });
    EXPECT_EQ(counter, static_cast<long long>(kThreads) * kOpsPerThread);
}

TEST(ChaosHook, DisabledInjectsNothing)
{
    sync_chaos::reset();
    for (int i = 0; i < 10000; ++i)
        ASSERT_FALSE(sync_chaos::forcedCasFail());
}

TEST(ChaosHook, DrawRateTracksConfiguredPermille)
{
    sync_chaos::configure(0xABCD, 500);
    int fails = 0;
    for (int i = 0; i < 10000; ++i)
        fails += sync_chaos::forcedCasFail() ? 1 : 0;
    sync_chaos::reset();
    EXPECT_GT(fails, 4000);
    EXPECT_LT(fails, 6000);
}

TEST(ChaosHook, SameSeedSameDrawSequence)
{
    std::vector<bool> first;
    sync_chaos::configure(0x1234, 300);
    for (int i = 0; i < 256; ++i)
        first.push_back(sync_chaos::forcedCasFail());
    sync_chaos::reset();

    sync_chaos::configure(0x1234, 300);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(sync_chaos::forcedCasFail(), first[i]) << "draw " << i;
    sync_chaos::reset();
}

} // namespace
} // namespace splash
