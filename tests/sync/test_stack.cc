#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "sync/lockfree_stack.h"
#include "sync/task_queue.h"

namespace splash {
namespace {

TEST(LockFreeStack, LifoOrderSingleThread)
{
    LockFreeStack stack(8);
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_TRUE(stack.push(i));
    std::uint32_t v;
    for (int i = 4; i >= 0; --i) {
        ASSERT_TRUE(stack.pop(v));
        EXPECT_EQ(v, static_cast<std::uint32_t>(i));
    }
    EXPECT_FALSE(stack.pop(v));
    EXPECT_TRUE(stack.empty());
}

/** Exercise both reclamation schemes through the same contract. */
class LockFreeStackPolicy
    : public ::testing::TestWithParam<ReclaimPolicy>
{
};

TEST_P(LockFreeStackPolicy, CapacityBound)
{
    // Single-threaded, capacity is exact: a popped node's grace period
    // resolves inside allocNode's drain-on-empty path, so the pool
    // refills before push reports full.
    LockFreeStack stack(3, GetParam());
    EXPECT_TRUE(stack.push(1));
    EXPECT_TRUE(stack.push(2));
    EXPECT_TRUE(stack.push(3));
    EXPECT_FALSE(stack.push(4));
    std::uint32_t v;
    EXPECT_TRUE(stack.pop(v));
    EXPECT_TRUE(stack.push(4));
}

TEST_P(LockFreeStackPolicy, ConcurrentPushPopConserved)
{
    const std::uint32_t per_thread = 2000;
    const int nthreads = 4;
    LockFreeStack stack(per_thread * nthreads, GetParam());
    std::atomic<std::uint64_t> popped_sum{0};
    std::atomic<std::uint64_t> popped_count{0};

    auto body = [&](int tid) {
        // Push our values, popping interleaved to stress reuse.
        // Under SMR a push can transiently fail while popped nodes
        // wait out their grace period, so retry; with the pool sized
        // to the total push count a free node always exists while any
        // push remains (live + deferred < capacity), so the retry
        // cannot spin forever.
        std::uint32_t v;
        for (std::uint32_t i = 0; i < per_thread; ++i) {
            while (!stack.push(tid * per_thread + i))
                std::this_thread::yield();
            if (i % 3 == 0 && stack.pop(v)) {
                popped_sum += v;
                ++popped_count;
            }
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t)
        threads.emplace_back(body, t);
    for (auto& t : threads)
        t.join();

    std::uint32_t v;
    while (stack.pop(v)) {
        popped_sum += v;
        ++popped_count;
    }
    const std::uint64_t total = per_thread * nthreads;
    EXPECT_EQ(popped_count.load(), total);
    EXPECT_EQ(popped_sum.load(), total * (total - 1) / 2);
    EXPECT_GT(stack.domain().reclaimed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, LockFreeStackPolicy,
                         ::testing::Values(ReclaimPolicy::Epoch,
                                           ReclaimPolicy::Hazard));

TEST(LockedStack, LifoOrder)
{
    LockedStack stack;
    stack.push(10);
    stack.push(20);
    std::uint32_t v;
    ASSERT_TRUE(stack.pop(v));
    EXPECT_EQ(v, 20u);
    ASSERT_TRUE(stack.pop(v));
    EXPECT_EQ(v, 10u);
    EXPECT_FALSE(stack.pop(v));
}

TEST(Tickets, LockedAndAtomicDispenseUniquely)
{
    LockedTicket locked;
    AtomicTicket atomic;
    std::set<std::uint64_t> seen_locked, seen_atomic;
    for (int i = 0; i < 100; ++i) {
        seen_locked.insert(locked.next());
        seen_atomic.insert(atomic.next());
    }
    EXPECT_EQ(seen_locked.size(), 100u);
    EXPECT_EQ(seen_atomic.size(), 100u);
}

TEST(Tickets, StepAdvances)
{
    AtomicTicket ticket;
    EXPECT_EQ(ticket.next(5), 0u);
    EXPECT_EQ(ticket.next(1), 5u);
    ticket.reset(100);
    EXPECT_EQ(ticket.next(), 100u);
}

TEST(Tickets, ConcurrentUnique)
{
    AtomicTicket ticket;
    const int nthreads = 4, per_thread = 5000;
    std::vector<std::vector<std::uint64_t>> got(nthreads);
    auto body = [&](int tid) {
        got[tid].reserve(per_thread);
        for (int i = 0; i < per_thread; ++i)
            got[tid].push_back(ticket.next());
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t)
        threads.emplace_back(body, t);
    for (auto& t : threads)
        t.join();
    std::set<std::uint64_t> all;
    for (const auto& v : got)
        all.insert(v.begin(), v.end());
    EXPECT_EQ(all.size(),
              static_cast<std::size_t>(nthreads) * per_thread);
}

} // namespace
} // namespace splash
