/**
 * @file
 * ReclaimDomain torture tests: drive both reclamation policies with a
 * generation-tagged node pool and assert the core SMR guarantee -- a
 * node observed under a live pin (epoch) or a validated hazard is
 * never reclaimed out from under the reader.
 *
 * The invariant check is the payload canary: a publisher writes a
 * node's payload to its generation tag before linking it, and the
 * reclaim callback poisons the payload when the domain hands the node
 * back.  A reader that loads the shared head under protection and
 * then sees anything but the exact tag has witnessed a
 * use-after-reclaim -- precisely the bug class the domain exists to
 * close (and the one the old tag-only LockFreeStack had).
 *
 * Chaos CAS-failure injection is armed for the concurrent cases so
 * the domain's internal retry loops (epoch advance, slot registry)
 * and the harness's publish loop all exercise their failure paths;
 * the suite's TSan CI stage runs this file under
 * -fsanitize=thread, where any ordering hole in the pin/advance/drain
 * chain surfaces as a data race on the payload word.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "sync/chaos_hook.h"
#include "sync/reclaim.h"
#include "util/rng.h"

namespace splash {
namespace {

constexpr std::uint64_t kPoison = 0xdeadbeefdeadbeefULL;

/** Generation-tagged single-slot container driven by a ReclaimDomain. */
struct TortureBox
{
    static constexpr std::uint32_t kNodes = 64;

    explicit TortureBox(ReclaimPolicy policy)
        : domain(policy, &TortureBox::reclaimNode, this)
    {
        for (std::uint32_t i = 1; i < kNodes; ++i) {
            payload[i].store(kPoison, std::memory_order_relaxed);
            freePool.push_back(i);
        }
        // Node 0 starts published with tag 0.
        payload[0].store(0, std::memory_order_relaxed);
        head.store(pack(0, 0), std::memory_order_relaxed);
    }

    static std::uint64_t
    pack(std::uint32_t node, std::uint32_t tag)
    {
        return (static_cast<std::uint64_t>(tag) << 32) | node;
    }
    static std::uint32_t nodeOf(std::uint64_t h)
    {
        return static_cast<std::uint32_t>(h);
    }
    static std::uint32_t tagOf(std::uint64_t h)
    {
        return static_cast<std::uint32_t>(h >> 32);
    }

    /** Domain callback: the node is quiescent; poison and recycle. */
    static void
    reclaimNode(void* owner, std::uint32_t node)
    {
        auto* self = static_cast<TortureBox*>(owner);
        const std::uint64_t prev = self->payload[node].exchange(
            kPoison, std::memory_order_acq_rel);
        // A node must be reclaimed exactly once per publication.
        EXPECT_NE(prev, kPoison) << "double reclaim of node " << node;
        std::lock_guard<std::mutex> lock(self->poolMutex);
        self->freePool.push_back(node);
    }

    /**
     * Read the published node under protection and check its canary.
     * Returns the observed tag for liveness accounting.
     */
    std::uint32_t
    read()
    {
        ReclaimDomain::Guard guard(domain);
        std::uint64_t snap = head.load(std::memory_order_seq_cst);
        while (!domain.protect(guard.slot(), nodeOf(snap), head, snap)) {
            // hazard mode lost the race to an updater; snap refreshed
        }
        const std::uint64_t got =
            payload[nodeOf(snap)].load(std::memory_order_acquire);
        EXPECT_EQ(got, static_cast<std::uint64_t>(tagOf(snap)))
            << "use-after-reclaim: node " << nodeOf(snap)
            << " observed under protection with payload " << got;
        return tagOf(snap);
    }

    /**
     * Replace the published node with a freshly allocated one and
     * retire the old one.  Returns false when the pool is transiently
     * empty (all nodes parked in grace periods).
     */
    bool
    update(std::uint32_t tag)
    {
        ReclaimDomain::Guard guard(domain);
        std::uint32_t fresh;
        {
            std::lock_guard<std::mutex> lock(poolMutex);
            if (freePool.empty())
                return false;
            fresh = freePool.back();
            freePool.pop_back();
        }
        payload[fresh].store(tag, std::memory_order_release);
        std::uint64_t old = head.load(std::memory_order_seq_cst);
        for (;;) {
            while (
                !domain.protect(guard.slot(), nodeOf(old), head, old)) {
            }
            if (head.compare_exchange_strong(old, pack(fresh, tag),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire))
                break;
        }
        domain.retire(guard.slot(), nodeOf(old));
        return true;
    }

    /** Drain the caller's deferred retirees as far as possible. */
    void
    drain()
    {
        ReclaimDomain::Guard guard(domain);
        domain.flush(guard.slot());
    }

    std::uint32_t
    freeCount()
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        return static_cast<std::uint32_t>(freePool.size());
    }

    ReclaimDomain domain;
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> payload[kNodes];
    std::mutex poolMutex;
    std::vector<std::uint32_t> freePool;
};

class ReclaimTorture : public ::testing::TestWithParam<ReclaimPolicy>
{
};

TEST_P(ReclaimTorture, SingleThreadRecyclesThroughGracePeriods)
{
    TortureBox box(GetParam());
    std::uint32_t tag = 1;
    std::uint32_t published = 0;
    for (int i = 0; i < 5000; ++i) {
        box.read();
        if (box.update(tag)) {
            ++tag;
            ++published;
        } else {
            box.drain();
        }
    }
    box.drain();
    EXPECT_GT(published, TortureBox::kNodes * 4)
        << "pool never recycled: grace periods are not resolving";
    EXPECT_GT(box.domain.reclaimed(), 0u);
}

TEST_P(ReclaimTorture, SeededChaosTortureNeverReclaimsProtectedNode)
{
    // Force ~15% of instrumented CAS attempts (epoch advances, slot
    // registry claims) to fail, widening every retry window the
    // domain has.  The payload canary in read() is the assertion.
    sync_chaos::configure(/*seed=*/0x5eed5eedULL, /*perMille=*/150);

    TortureBox box(GetParam());
    const int nthreads = 4;
    const int iters = 4000;
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> updates{0};

    auto body = [&](int tid) {
        Rng rng(0x1000u + static_cast<std::uint64_t>(tid));
        std::uint32_t tag =
            static_cast<std::uint32_t>(tid + 1) << 24;
        for (int i = 0; i < iters; ++i) {
            if (rng.below(4) != 0) {
                box.read();
                reads.fetch_add(1, std::memory_order_relaxed);
            } else if (box.update(++tag)) {
                updates.fetch_add(1, std::memory_order_relaxed);
            } else {
                box.drain();
            }
        }
        // Leave nothing stranded in this thread's retire buckets.
        box.drain();
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t)
        threads.emplace_back(body, t);
    for (auto& t : threads)
        t.join();

    sync_chaos::reset();

    EXPECT_GT(reads.load(), 0u);
    EXPECT_GT(updates.load(), static_cast<std::uint64_t>(nthreads));
    EXPECT_GT(box.domain.reclaimed(), 0u);
    // Conservation: every node is either free, the published one, or
    // still parked in a (now-unreachable) retire bucket of an exited
    // thread; a final drain from this thread frees our own only, so
    // just bound the census instead of demanding exactness.
    EXPECT_LE(box.freeCount(), TortureBox::kNodes - 1);
}

INSTANTIATE_TEST_SUITE_P(Policies, ReclaimTorture,
                         ::testing::Values(ReclaimPolicy::Epoch,
                                           ReclaimPolicy::Hazard));

} // namespace
} // namespace splash
