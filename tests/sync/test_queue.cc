#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/mpmc_queue.h"
#include "sync/task_queue.h"

namespace splash {
namespace {

TEST(MpmcQueue, FifoOrderSingleThread)
{
    MpmcQueue queue(8);
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_TRUE(queue.push(i));
    std::uint32_t v;
    for (std::uint32_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(queue.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(queue.pop(v));
    EXPECT_TRUE(queue.empty());
}

TEST(MpmcQueue, CapacityRoundsUpAndBounds)
{
    MpmcQueue queue(3);
    EXPECT_EQ(queue.capacity(), 4u); // rounded to the next power of two
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_TRUE(queue.push(i));
    EXPECT_FALSE(queue.push(99));
    std::uint32_t v;
    EXPECT_TRUE(queue.pop(v));
    EXPECT_EQ(v, 0u);
    // The freed cell is reusable immediately: no grace period, the
    // sequence number is the recycling protocol.
    EXPECT_TRUE(queue.push(99));
}

TEST(MpmcQueue, CellsRecycleAcrossManyLaps)
{
    MpmcQueue queue(2);
    std::uint32_t v;
    for (std::uint32_t lap = 0; lap < 1000; ++lap) {
        ASSERT_TRUE(queue.push(lap));
        ASSERT_TRUE(queue.pop(v));
        ASSERT_EQ(v, lap);
    }
    EXPECT_TRUE(queue.empty());
}

TEST(MpmcQueue, ConcurrentProducersConsumersConserve)
{
    const std::uint32_t per_thread = 20000;
    const int pairs = 2;
    MpmcQueue queue(256); // much smaller than the traffic: forces laps
    std::atomic<std::uint64_t> popped_sum{0};
    std::atomic<std::uint64_t> popped_count{0};
    const std::uint64_t total =
        static_cast<std::uint64_t>(per_thread) * pairs;

    auto producer = [&](int tid) {
        for (std::uint32_t i = 0; i < per_thread; ++i) {
            const std::uint32_t value =
                static_cast<std::uint32_t>(tid) * per_thread + i;
            while (!queue.push(value))
                std::this_thread::yield();
        }
    };
    auto consumer = [&] {
        std::uint32_t v;
        while (popped_count.load(std::memory_order_acquire) < total) {
            if (queue.pop(v)) {
                popped_sum.fetch_add(v, std::memory_order_relaxed);
                popped_count.fetch_add(1, std::memory_order_acq_rel);
            } else {
                std::this_thread::yield();
            }
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < pairs; ++t)
        threads.emplace_back(producer, t);
    for (int t = 0; t < pairs; ++t)
        threads.emplace_back(consumer);
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(popped_count.load(), total);
    EXPECT_EQ(popped_sum.load(), total * (total - 1) / 2);
    EXPECT_TRUE(queue.empty());
}

TEST(LockedQueue, FifoOrderAndBound)
{
    LockedQueue queue(2);
    EXPECT_TRUE(queue.push(10));
    EXPECT_TRUE(queue.push(20));
    EXPECT_FALSE(queue.push(30));
    std::uint32_t v;
    ASSERT_TRUE(queue.pop(v));
    EXPECT_EQ(v, 10u);
    ASSERT_TRUE(queue.pop(v));
    EXPECT_EQ(v, 20u);
    EXPECT_FALSE(queue.pop(v));
    EXPECT_TRUE(queue.empty());
}

} // namespace
} // namespace splash
