#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/barrier.h"

namespace splash {
namespace {

/**
 * Generic barrier torture: each of @p nthreads increments a phase
 * counter between barrier crossings; after every crossing all counters
 * must agree, which fails if any thread ever escapes a round early.
 */
template <typename BarrierT>
void
phaseAgreementTest(BarrierT& barrier, int nthreads, int rounds)
{
    std::vector<std::atomic<int>> phase(nthreads);
    for (auto& p : phase)
        p.store(0);
    std::atomic<bool> failed{false};

    auto body = [&](int tid) {
        for (int r = 0; r < rounds; ++r) {
            phase[tid].store(r + 1, std::memory_order_release);
            barrier.arriveAndWait();
            for (int t = 0; t < nthreads; ++t) {
                if (phase[t].load(std::memory_order_acquire) < r + 1)
                    failed.store(true);
            }
            barrier.arriveAndWait();
        }
    };

    std::vector<std::thread> threads;
    for (int tid = 0; tid < nthreads; ++tid)
        threads.emplace_back(body, tid);
    for (auto& t : threads)
        t.join();
    EXPECT_FALSE(failed.load());
}

TEST(CondBarrier, SingleThreadPassesThrough)
{
    CondBarrier barrier(1);
    for (int i = 0; i < 100; ++i)
        barrier.arriveAndWait();
    EXPECT_EQ(barrier.participants(), 1);
}

TEST(SenseBarrier, SingleThreadPassesThrough)
{
    SenseBarrier barrier(1);
    for (int i = 0; i < 100; ++i)
        barrier.arriveAndWait();
}

TEST(TreeBarrier, SingleThreadPassesThrough)
{
    TreeBarrier barrier(1);
    for (int i = 0; i < 100; ++i)
        barrier.arriveAndWait(0);
}

TEST(CondBarrier, PhaseAgreement)
{
    CondBarrier barrier(4);
    phaseAgreementTest(barrier, 4, 50);
}

TEST(SenseBarrier, PhaseAgreement)
{
    SenseBarrier barrier(4);
    phaseAgreementTest(barrier, 4, 50);
}

TEST(TreeBarrier, PhaseAgreementViaTid)
{
    TreeBarrier barrier(6, 2);
    std::vector<std::atomic<int>> phase(6);
    for (auto& p : phase)
        p.store(0);
    std::atomic<bool> failed{false};
    auto body = [&](int tid) {
        for (int r = 0; r < 50; ++r) {
            phase[tid].store(r + 1);
            barrier.arriveAndWait(tid);
            for (int t = 0; t < 6; ++t)
                if (phase[t].load() < r + 1)
                    failed.store(true);
            barrier.arriveAndWait(tid);
        }
    };
    std::vector<std::thread> threads;
    for (int tid = 0; tid < 6; ++tid)
        threads.emplace_back(body, tid);
    for (auto& t : threads)
        t.join();
    EXPECT_FALSE(failed.load());
}

TEST(TreeBarrier, VariousFanouts)
{
    for (int fanout : {2, 3, 4, 8}) {
        TreeBarrier barrier(5, fanout);
        phaseAgreementTest(barrier, 5, 10);
    }
}

class BarrierParamTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BarrierParamTest, AllKindsAgreeAcrossThreadCounts)
{
    const int n = GetParam();
    {
        CondBarrier barrier(n);
        phaseAgreementTest(barrier, n, 20);
    }
    {
        SenseBarrier barrier(n);
        phaseAgreementTest(barrier, n, 20);
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, BarrierParamTest,
                         ::testing::Values(1, 2, 3, 4, 8));

} // namespace
} // namespace splash
