#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/barrier.h"

namespace splash {
namespace {

/**
 * Generic barrier torture: each of @p nthreads increments a phase
 * counter between barrier crossings; after every crossing all counters
 * must agree, which fails if any thread ever escapes a round early.
 */
template <typename BarrierT>
void
phaseAgreementTest(BarrierT& barrier, int nthreads, int rounds)
{
    std::vector<std::atomic<int>> phase(nthreads);
    for (auto& p : phase)
        p.store(0);
    std::atomic<bool> failed{false};

    auto body = [&](int tid) {
        for (int r = 0; r < rounds; ++r) {
            phase[tid].store(r + 1, std::memory_order_release);
            barrier.arriveAndWait();
            for (int t = 0; t < nthreads; ++t) {
                if (phase[t].load(std::memory_order_acquire) < r + 1)
                    failed.store(true);
            }
            barrier.arriveAndWait();
        }
    };

    std::vector<std::thread> threads;
    for (int tid = 0; tid < nthreads; ++tid)
        threads.emplace_back(body, tid);
    for (auto& t : threads)
        t.join();
    EXPECT_FALSE(failed.load());
}

TEST(CondBarrier, SingleThreadPassesThrough)
{
    CondBarrier barrier(1);
    for (int i = 0; i < 100; ++i)
        barrier.arriveAndWait();
    EXPECT_EQ(barrier.participants(), 1);
}

TEST(SenseBarrier, SingleThreadPassesThrough)
{
    SenseBarrier barrier(1);
    for (int i = 0; i < 100; ++i)
        barrier.arriveAndWait();
}

TEST(TreeBarrier, SingleThreadPassesThrough)
{
    TreeBarrier barrier(1);
    for (int i = 0; i < 100; ++i)
        barrier.arriveAndWait(0);
}

TEST(CondBarrier, PhaseAgreement)
{
    CondBarrier barrier(4);
    phaseAgreementTest(barrier, 4, 50);
}

TEST(SenseBarrier, PhaseAgreement)
{
    SenseBarrier barrier(4);
    phaseAgreementTest(barrier, 4, 50);
}

TEST(TreeBarrier, PhaseAgreementViaTid)
{
    TreeBarrier barrier(6, 2);
    std::vector<std::atomic<int>> phase(6);
    for (auto& p : phase)
        p.store(0);
    std::atomic<bool> failed{false};
    auto body = [&](int tid) {
        for (int r = 0; r < 50; ++r) {
            phase[tid].store(r + 1);
            barrier.arriveAndWait(tid);
            for (int t = 0; t < 6; ++t)
                if (phase[t].load() < r + 1)
                    failed.store(true);
            barrier.arriveAndWait(tid);
        }
    };
    std::vector<std::thread> threads;
    for (int tid = 0; tid < 6; ++tid)
        threads.emplace_back(body, tid);
    for (auto& t : threads)
        t.join();
    EXPECT_FALSE(failed.load());
}

TEST(TreeBarrier, VariousFanouts)
{
    for (int fanout : {2, 3, 4, 8}) {
        TreeBarrier barrier(5, fanout);
        phaseAgreementTest(barrier, 5, 10);
    }
}

/**
 * Reuse torture: a barrier instance must stay correct across many
 * generations (the sense/generation words wrap through thousands of
 * reversals without reallocation).
 */
TEST(CondBarrier, ReuseAcrossManyGenerations)
{
    CondBarrier barrier(2);
    phaseAgreementTest(barrier, 2, 1000);
}

TEST(SenseBarrier, ReuseAcrossManyGenerations)
{
    SenseBarrier barrier(2);
    phaseAgreementTest(barrier, 2, 1000);
}

TEST(TreeBarrier, ReuseAcrossManyGenerations)
{
    TreeBarrier barrier(2, 2);
    phaseAgreementTest(barrier, 2, 1000);
}

/** The auto-slot path must behave exactly like explicit tids. */
TEST(TreeBarrier, AutoSlotPhaseAgreement)
{
    TreeBarrier barrier(5, 2);
    phaseAgreementTest(barrier, 5, 50);
}

/**
 * A thread alternating between two instances must keep its permanent
 * slot in each; the old (owner, slot) pair implementation re-drew a
 * slot on every instance switch and exhausted the dispenser.
 */
TEST(TreeBarrier, AutoSlotAlternatingInstances)
{
    constexpr int kThreads = 4;
    TreeBarrier a(kThreads, 2);
    TreeBarrier b(kThreads, 2);
    std::atomic<int> rounds{0};
    std::vector<std::thread> threads;
    for (int tid = 0; tid < kThreads; ++tid) {
        threads.emplace_back([&] {
            for (int r = 0; r < 50; ++r) {
                a.arriveAndWait();
                b.arriveAndWait();
            }
            rounds.fetch_add(1);
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(rounds.load(), kThreads);
}

/**
 * The dispenser must fail fast when more distinct threads than
 * participants use the auto path (a silently aliased slot would
 * double-arrive and release the barrier early).
 */
TEST(TreeBarrierDeathTest, AutoSlotExhaustionPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            TreeBarrier barrier(1);
            // Fresh host threads, each with fresh thread-local slot
            // state: the second distinct thread overflows the
            // dispenser of this 1-participant barrier.
            std::thread([&] { barrier.arriveAndWait(); }).join();
            std::thread([&] { barrier.arriveAndWait(); }).join();
        },
        "more distinct threads than participants");
}

class BarrierParamTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BarrierParamTest, AllKindsAgreeAcrossThreadCounts)
{
    const int n = GetParam();
    {
        CondBarrier barrier(n);
        phaseAgreementTest(barrier, n, 20);
    }
    {
        SenseBarrier barrier(n);
        phaseAgreementTest(barrier, n, 20);
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, BarrierParamTest,
                         ::testing::Values(1, 2, 3, 4, 8));

} // namespace
} // namespace splash
