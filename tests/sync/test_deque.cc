/**
 * @file
 * WorkStealingDeque unit and torture tests: owner-side LIFO, thief-side
 * FIFO, the single-element owner-vs-thief race, and conservation under
 * real concurrency with chaos CAS injection armed.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sync/chaos_hook.h"
#include "sync/task_queue.h"
#include "sync/ws_deque.h"

namespace splash {
namespace {

TEST(WorkStealingDeque, OwnerPushPopIsLifo)
{
    WorkStealingDeque deque(8);
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_TRUE(deque.push(i));
    std::uint32_t v;
    for (std::uint32_t i = 5; i-- > 0;) {
        ASSERT_TRUE(deque.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(deque.pop(v));
    EXPECT_TRUE(deque.empty());
}

TEST(WorkStealingDeque, StealTakesOldestFirst)
{
    WorkStealingDeque deque(8);
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_TRUE(deque.push(i));
    std::uint32_t v;
    ASSERT_TRUE(deque.steal(v));
    EXPECT_EQ(v, 0u); // FIFO from the top
    ASSERT_TRUE(deque.pop(v));
    EXPECT_EQ(v, 3u); // LIFO from the bottom
    ASSERT_TRUE(deque.steal(v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(deque.pop(v));
    EXPECT_EQ(v, 2u);
    EXPECT_FALSE(deque.steal(v));
    EXPECT_FALSE(deque.pop(v));
}

TEST(WorkStealingDeque, CapacityRoundsUpAndBounds)
{
    WorkStealingDeque deque(5);
    EXPECT_EQ(deque.capacity(), 8u);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_TRUE(deque.push(i));
    EXPECT_FALSE(deque.push(99));
    std::uint32_t v;
    ASSERT_TRUE(deque.steal(v)); // frees a top slot
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(deque.push(99));
}

TEST(WorkStealingDeque, RingRecyclesAcrossManyLaps)
{
    WorkStealingDeque deque(2);
    std::uint32_t v;
    for (std::uint32_t lap = 0; lap < 1000; ++lap) {
        ASSERT_TRUE(deque.push(lap));
        ASSERT_TRUE(lap % 2 ? deque.pop(v) : deque.steal(v));
        ASSERT_EQ(v, lap);
    }
    EXPECT_TRUE(deque.empty());
}

/**
 * Chaos-forced CAS failures must never make pop() spuriously report
 * empty: with no thieves running, the owner always drains its own
 * deque completely (this is the contract radiosity's termination scan
 * depends on).
 */
TEST(WorkStealingDeque, ChaosNeverStrandsTheLastElement)
{
    sync_chaos::configure(/*seed=*/0xdecafULL, /*perMille=*/400);
    WorkStealingDeque deque(4);
    std::uint32_t v;
    for (int round = 0; round < 200; ++round) {
        ASSERT_TRUE(deque.push(static_cast<std::uint32_t>(round)));
        ASSERT_TRUE(deque.pop(v))
            << "chaos CAS failure stranded the last element";
        ASSERT_EQ(v, static_cast<std::uint32_t>(round));
    }
    sync_chaos::reset();
    EXPECT_TRUE(deque.empty());
}

/**
 * One owner mixing push/pop with three thieves stealing: every pushed
 * value is taken exactly once (sum + count conservation).
 */
TEST(WorkStealingDeque, OwnerWithThievesConserves)
{
    const std::uint32_t total = 40000;
    const int nthieves = 3;
    WorkStealingDeque deque(512);
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> taken_sum{0};
    std::atomic<std::uint64_t> taken_count{0};

    auto thief = [&] {
        std::uint32_t v;
        while (!done.load(std::memory_order_acquire) ||
               !deque.empty()) {
            if (deque.steal(v)) {
                taken_sum.fetch_add(v, std::memory_order_relaxed);
                taken_count.fetch_add(1, std::memory_order_relaxed);
            } else {
                std::this_thread::yield();
            }
        }
    };
    std::vector<std::thread> thieves;
    for (int t = 0; t < nthieves; ++t)
        thieves.emplace_back(thief);

    // Owner: push everything, popping a batch whenever the ring
    // fills, then drain the remainder itself.
    std::uint32_t v;
    for (std::uint32_t i = 0; i < total; ++i) {
        while (!deque.push(i)) {
            if (deque.pop(v)) {
                taken_sum.fetch_add(v, std::memory_order_relaxed);
                taken_count.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
    while (deque.pop(v)) {
        taken_sum.fetch_add(v, std::memory_order_relaxed);
        taken_count.fetch_add(1, std::memory_order_relaxed);
    }
    done.store(true, std::memory_order_release);
    for (auto& t : thieves)
        t.join();

    const std::uint64_t want = static_cast<std::uint64_t>(total);
    EXPECT_EQ(taken_count.load(), want);
    EXPECT_EQ(taken_sum.load(), want * (want - 1) / 2);
    EXPECT_TRUE(deque.empty());
}

TEST(LockedDeque, PopIsLifoStealIsFifo)
{
    LockedDeque deque(4);
    EXPECT_TRUE(deque.push(1));
    EXPECT_TRUE(deque.push(2));
    EXPECT_TRUE(deque.push(3));
    std::uint32_t v;
    ASSERT_TRUE(deque.pop(v));
    EXPECT_EQ(v, 3u);
    ASSERT_TRUE(deque.steal(v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(deque.pop(v));
    EXPECT_EQ(v, 2u);
    EXPECT_FALSE(deque.pop(v));
    EXPECT_TRUE(deque.empty());
}

TEST(LockedDeque, BoundedAtCapacity)
{
    LockedDeque deque(2);
    EXPECT_TRUE(deque.push(1));
    EXPECT_TRUE(deque.push(2));
    EXPECT_FALSE(deque.push(3));
}

} // namespace
} // namespace splash
