#!/usr/bin/env python3
"""Sync-Lint corpus tests.

Proves every rule R1-R6 is live:
  * each `PLANT(Rn)` marker in the corpus fixtures produces exactly
    one finding of that rule on that line -- no more, no fewer;
  * disabling a rule removes exactly its findings (so a silently
    dead rule cannot pass the corpus);
  * the allowlist pragma suppresses findings and records the reason;
  * the JSON export validates against splash4-synclint-v1;
  * the fixtures are real, compilable C++ (g++ -fsyntax-only), so
    planted violations are contract bugs, not syntax errors.

Standard library only.  Run directly or via ctest (synclint_corpus).
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

TEST_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TEST_DIR))
CORPUS = os.path.join(TEST_DIR, "synclint_corpus")
SYNCLINT = os.path.join(REPO_ROOT, "tools", "synclint")
SCHEMA_CHECK = os.path.join(REPO_ROOT, "tools",
                            "check_synclint_schema.py")

_PLANT_RE = re.compile(r"//\s*PLANT\((R\d)\)")


def planted_markers():
    """{(rule, relpath, line)} for every PLANT marker in the corpus."""
    out = set()
    for dirpath, _dirnames, filenames in os.walk(CORPUS):
        for fn in sorted(filenames):
            if not fn.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, CORPUS)
            with open(path, "r", encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    m = _PLANT_RE.search(line)
                    if m:
                        out.add((m.group(1), rel, lineno))
    return out


def write_compile_db(tmpdir):
    tu = os.path.join(CORPUS, "corpus_tu.cc")
    db = [{
        "directory": CORPUS,
        "file": tu,
        "command": "g++ -std=c++20 -I %s -c %s -o /dev/null"
                   % (CORPUS, tu),
    }]
    path = os.path.join(tmpdir, "compile_commands.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(db, f)
    return path


def run_synclint(compdb, extra=None, json_out=None):
    cmd = [sys.executable, SYNCLINT,
           "--compile-commands", compdb,
           "--project-root", CORPUS,
           "--root", ".",
           "--sync-root", "sync",
           "--frontend", "builtin"]
    if json_out:
        cmd += ["--json", json_out]
    cmd += list(extra or ())
    return subprocess.run(cmd, capture_output=True, text=True)


class SynclintCorpusTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.tmpdir = tempfile.mkdtemp(prefix="synclint_corpus_")
        cls.compdb = write_compile_db(cls.tmpdir)
        cls.json_path = os.path.join(cls.tmpdir, "findings.json")
        cls.proc = run_synclint(cls.compdb, json_out=cls.json_path)
        with open(cls.json_path, "r", encoding="utf-8") as f:
            cls.doc = json.load(f)

    @classmethod
    def tearDownClass(cls):
        shutil.rmtree(cls.tmpdir, ignore_errors=True)

    def test_fixtures_are_real_cpp(self):
        gxx = shutil.which("g++") or shutil.which("c++")
        if gxx is None:
            self.skipTest("no C++ compiler on PATH")
        proc = subprocess.run(
            [gxx, "-std=c++20", "-fsyntax-only", "-Wall", "-I",
             CORPUS, os.path.join(CORPUS, "corpus_tu.cc")],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0,
                         "corpus does not compile:\n" + proc.stderr)

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.proc.returncode, 1, self.proc.stderr)

    def test_every_plant_fires_exactly_once(self):
        expected = planted_markers()
        self.assertTrue(expected, "no PLANT markers found")
        got = {(f["rule"], f["file"], f["line"])
               for f in self.doc["findings"]}
        self.assertEqual(
            got, expected,
            "findings do not match planted violations\n"
            "unexpected: %r\nmissing: %r"
            % (sorted(got - expected), sorted(expected - got)))
        # Exactly one finding per planted line.
        self.assertEqual(len(self.doc["findings"]), len(expected))

    def test_all_rules_represented(self):
        fired = {f["rule"] for f in self.doc["findings"]}
        self.assertEqual(fired,
                         {"R1", "R2", "R3", "R4", "R5", "R6"})

    def test_allowlist_suppresses_and_records_reason(self):
        allowed = self.doc["allowlisted"]
        self.assertEqual(len(allowed), 1)
        entry = allowed[0]
        self.assertEqual(entry["rule"], "R5")
        self.assertIn("r5_padding.h", entry["file"])
        self.assertTrue(entry["reason"])
        # Suppressed entries never appear in findings.
        for f in self.doc["findings"]:
            self.assertNotEqual((f["file"], f["line"]),
                                (entry["file"], entry["line"]))

    def test_each_rule_dies_when_disabled(self):
        baseline = {(f["rule"], f["file"], f["line"])
                    for f in self.doc["findings"]}
        for rule in ("R1", "R2", "R3", "R4", "R5", "R6"):
            json_out = os.path.join(self.tmpdir,
                                    "disable_%s.json" % rule)
            proc = run_synclint(self.compdb,
                                extra=["--disable", rule],
                                json_out=json_out)
            with open(json_out, "r", encoding="utf-8") as f:
                doc = json.load(f)
            got = {(f["rule"], f["file"], f["line"])
                   for f in doc["findings"]}
            # Disabling R5 orphans the DensePoolNode allowlist
            # pragma, so an R0 unused-pragma finding appears.
            expected = {x for x in baseline if x[0] != rule}
            if rule == "R5":
                expected.add(("R0", "r5_padding.h", 30))
            self.assertEqual(
                got, expected,
                "--disable %s changed other rules' findings" % rule)
            self.assertNotIn(
                rule, {f["rule"] for f in doc["findings"]},
                "--disable %s left %s findings" % (rule, rule))
            self.assertEqual(proc.returncode, 1)

    def test_json_schema_validates(self):
        proc = subprocess.run(
            [sys.executable, SCHEMA_CHECK, self.json_path],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_list_rules_catalog(self):
        proc = subprocess.run(
            [sys.executable, SYNCLINT, "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        for rule in ("R1", "R2", "R3", "R4", "R5", "R6"):
            self.assertIn(rule, proc.stdout)

    def test_missing_compile_db_is_an_error(self):
        proc = run_synclint(os.path.join(self.tmpdir, "nope.json"))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("compile_commands", proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
