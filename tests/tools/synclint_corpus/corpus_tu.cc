/**
 * @file
 * Translation unit tying the Sync-Lint corpus together.  It exists so
 * the corpus has a compile_commands.json entry (the tool requires
 * one) and so `g++ -fsyntax-only` can prove every fixture is real,
 * compilable C++ -- planted contract violations, not syntax errors.
 */

#include "r1_orders.h"
#include "r2_cas.h"
#include "r5_padding.h"
#include "r6_slots.h"
#include "support.h"
#include "sync/r3_chaos.h"
#include "sync/r4_scope.h"

int
main()
{
    corpus::CleanLock lock;
    lock.lock();
    lock.unlock();

    corpus::ImplicitOrderCounter r1;
    r1.bump();

    corpus::CasOrderFixture r2;
    (void)r2.validPair();

    corpus::ChaosBlindCounter r3;
    r3.add(1);
    corpus::ChaosBlindRing r3ring;
    (void)r3ring.tryClaimHooked();

    corpus::ScopeBlindLatch r4;
    r4.countedArrive();
    corpus::ScopeBlindDeque r4deque;
    (void)r4deque.popBottomHooked();

    corpus::SharedLineCounters r5{};
    r5.produced.store(1, std::memory_order_relaxed);

    corpus::FastSlot r6{};

    return static_cast<int>(r1.read() + r3.read() +
                            r4.arrivals() +
                            r5.produced.load(
                                std::memory_order_relaxed) +
                            static_cast<int>(r6.kind));
}
