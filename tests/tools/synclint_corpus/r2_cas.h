/**
 * @file
 * R2 fixtures: CAS order-pair validity and release/acquire pairing.
 * Lines tagged PLANT(R2) must each produce exactly one R2 finding.
 */

#ifndef SYNCLINT_CORPUS_R2_CAS_H
#define SYNCLINT_CORPUS_R2_CAS_H

#include <atomic>
#include <cstdint>

namespace corpus {

class CasOrderFixture
{
  public:
    bool
    implicitFailure()
    {
        std::uint32_t expected = 0;
        return word_.compare_exchange_strong( // PLANT(R2) failure order implicit
            expected, 1,
            std::memory_order_acquire);
    }

    bool
    implicitBoth()
    {
        std::uint32_t expected = 0;
        return word_.compare_exchange_strong(expected, 1); // PLANT(R2) both orders implicit
    }

    bool
    invalidFailure()
    {
        std::uint32_t expected = 0;
        return word_.compare_exchange_weak( // PLANT(R2) release invalid as failure order
            expected, 1, std::memory_order_acq_rel,
            std::memory_order_release);
    }

    bool
    strongerFailure()
    {
        std::uint32_t expected = 0;
        return word_.compare_exchange_weak( // PLANT(R2) failure stronger than success
            expected, 1, std::memory_order_relaxed,
            std::memory_order_acquire);
    }

    bool
    validPair()
    {
        std::uint32_t expected = 0;
        return word_.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel,
            std::memory_order_acquire); // clean
    }

  private:
    std::atomic<std::uint32_t> word_{0};
};

class UnpairedRelease
{
  public:
    void
    publish(std::uint64_t v)
    {
        seqno_ = v;
        ready_.store(true, std::memory_order_release); // PLANT(R2) release with no acquire reader
    }

    // The only read of ready_ is relaxed, so the release above never
    // synchronizes-with anything.
    bool
    peek() const
    {
        return ready_.load(std::memory_order_relaxed);
    }

  private:
    std::uint64_t seqno_ = 0;
    std::atomic<bool> ready_{false};
};

} // namespace corpus

#endif // SYNCLINT_CORPUS_R2_CAS_H
