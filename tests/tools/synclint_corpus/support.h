/**
 * @file
 * Shared scaffolding for the Sync-Lint violation corpus.
 *
 * Mirrors the shape of the real sync substrate (chaos + scope hook
 * namespaces) so fixtures exercise the rules exactly as production
 * code would, without depending on src/.  Everything here is
 * contract-clean: the planted violations live in the r*_ fixtures.
 */

#ifndef SYNCLINT_CORPUS_SUPPORT_H
#define SYNCLINT_CORPUS_SUPPORT_H

#include <atomic>
#include <cstdint>

namespace corpus {

namespace sync_chaos {

inline bool
forcedCasFail()
{
    return false;
}

} // namespace sync_chaos

namespace sync_scope {

inline void
noteAttempt()
{
}

inline void
noteRetry()
{
}

} // namespace sync_scope

/** A fully contract-clean lock: every rule passes on this record. */
class CleanLock
{
  public:
    void
    lock()
    {
        for (;;) {
            sync_scope::noteAttempt();
            if (!sync_chaos::forcedCasFail() &&
                !flag_.exchange(true, std::memory_order_acquire))
                return;
            sync_scope::noteRetry();
        }
    }

    void unlock() { flag_.store(false, std::memory_order_release); }

  private:
    std::atomic<bool> flag_{false};
};

} // namespace corpus

#endif // SYNCLINT_CORPUS_SUPPORT_H
