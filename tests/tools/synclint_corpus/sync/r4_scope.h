/**
 * @file
 * R4 fixtures: public primitive ops in the sync root must emit the
 * Sync-Scope attempt/retry hooks.  Lines tagged PLANT(R4) must each
 * produce exactly one R4 finding (chaos hooks are present so R3
 * stays quiet).
 */

#ifndef SYNCLINT_CORPUS_R4_SCOPE_H
#define SYNCLINT_CORPUS_R4_SCOPE_H

#include <atomic>
#include <cstdint>

#include "support.h"

namespace corpus {

class ScopeBlindLatch
{
  public:
    void silentArrive() // PLANT(R4) public RMW op without noteAttempt
    {
        arrivals_.fetch_add(1, std::memory_order_acq_rel);
    }

    void
    silentRetry()
    {
        sync_scope::noteAttempt();
        std::uint32_t cur = arrivals_.load(std::memory_order_relaxed);
        while (sync_chaos::forcedCasFail() ||
               !arrivals_.compare_exchange_weak( // PLANT(R4) retry loop without noteRetry
                   cur, cur + 1, std::memory_order_acq_rel,
                   std::memory_order_relaxed)) {
        }
    }

    void
    countedArrive()
    {
        sync_scope::noteAttempt(); // clean: attempt hook present
        arrivals_.fetch_add(1, std::memory_order_acq_rel);
    }

    std::uint32_t
    arrivals() const
    {
        return arrivals_.load(std::memory_order_acquire);
    }

  private:
    // Private helpers are outside the public-op contract.
    void
    internalBump()
    {
        arrivals_.fetch_add(1, std::memory_order_acq_rel);
    }

    std::atomic<std::uint32_t> arrivals_{0};
};

/** Transitive coverage: the public op notes via a helper it calls. */
class ScopeDelegatingLatch
{
  public:
    void
    arrive()
    {
        notedBump(); // clean: noteAttempt reached transitively
    }

  private:
    void
    notedBump()
    {
        sync_scope::noteAttempt();
        ticks_.fetch_add(1, std::memory_order_acq_rel);
    }

    std::atomic<std::uint64_t> ticks_{0};
};

/**
 * Chase-Lev shape: the owner's pop races a thief for the last
 * element with a single CAS on top.  That race is a retry site like
 * any other -- the scope profile undercounts contention if the loop
 * skips noteRetry.
 */
class ScopeBlindDeque
{
  public:
    bool
    popBottom()
    {
        sync_scope::noteAttempt();
        const std::int64_t b =
            bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        for (;;) {
            if (t < b)
                return true; // more than one element: ours alone
            if (t > b) {
                bottom_.store(b + 1, std::memory_order_relaxed);
                return false; // already empty
            }
            if (sync_chaos::forcedCasFail())
                continue; // modeled lost race
            if (top_.compare_exchange_strong( // PLANT(R4) last-element race loop without noteRetry
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed)) {
                bottom_.store(b + 1, std::memory_order_relaxed);
                return true;
            }
        }
    }

    bool
    popBottomHooked()
    {
        sync_scope::noteAttempt();
        const std::int64_t b =
            bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        for (;;) {
            if (t < b)
                return true;
            if (t > b) {
                bottom_.store(b + 1, std::memory_order_relaxed);
                return false;
            }
            if (sync_chaos::forcedCasFail() ||
                !top_.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed)) {
                sync_scope::noteRetry(); // clean: race loss counted
                continue;
            }
            bottom_.store(b + 1, std::memory_order_relaxed);
            return true;
        }
    }

    bool
    empty() const
    {
        return top_.load(std::memory_order_acquire) >=
               bottom_.load(std::memory_order_acquire);
    }

  private:
    alignas(64) std::atomic<std::int64_t> top_{0};
    alignas(64) std::atomic<std::int64_t> bottom_{0};
};

} // namespace corpus

#endif // SYNCLINT_CORPUS_R4_SCOPE_H
