/**
 * @file
 * R4 fixtures: public primitive ops in the sync root must emit the
 * Sync-Scope attempt/retry hooks.  Lines tagged PLANT(R4) must each
 * produce exactly one R4 finding (chaos hooks are present so R3
 * stays quiet).
 */

#ifndef SYNCLINT_CORPUS_R4_SCOPE_H
#define SYNCLINT_CORPUS_R4_SCOPE_H

#include <atomic>
#include <cstdint>

#include "support.h"

namespace corpus {

class ScopeBlindLatch
{
  public:
    void silentArrive() // PLANT(R4) public RMW op without noteAttempt
    {
        arrivals_.fetch_add(1, std::memory_order_acq_rel);
    }

    void
    silentRetry()
    {
        sync_scope::noteAttempt();
        std::uint32_t cur = arrivals_.load(std::memory_order_relaxed);
        while (sync_chaos::forcedCasFail() ||
               !arrivals_.compare_exchange_weak( // PLANT(R4) retry loop without noteRetry
                   cur, cur + 1, std::memory_order_acq_rel,
                   std::memory_order_relaxed)) {
        }
    }

    void
    countedArrive()
    {
        sync_scope::noteAttempt(); // clean: attempt hook present
        arrivals_.fetch_add(1, std::memory_order_acq_rel);
    }

    std::uint32_t
    arrivals() const
    {
        return arrivals_.load(std::memory_order_acquire);
    }

  private:
    // Private helpers are outside the public-op contract.
    void
    internalBump()
    {
        arrivals_.fetch_add(1, std::memory_order_acq_rel);
    }

    std::atomic<std::uint32_t> arrivals_{0};
};

/** Transitive coverage: the public op notes via a helper it calls. */
class ScopeDelegatingLatch
{
  public:
    void
    arrive()
    {
        notedBump(); // clean: noteAttempt reached transitively
    }

  private:
    void
    notedBump()
    {
        sync_scope::noteAttempt();
        ticks_.fetch_add(1, std::memory_order_acq_rel);
    }

    std::atomic<std::uint64_t> ticks_{0};
};

} // namespace corpus

#endif // SYNCLINT_CORPUS_R4_SCOPE_H
