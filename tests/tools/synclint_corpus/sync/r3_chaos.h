/**
 * @file
 * R3 fixtures: CAS retry loops in the sync root must invoke the
 * sync_chaos fault-injection hook.  Lines tagged PLANT(R3) must each
 * produce exactly one R3 finding (and nothing else: the Sync-Scope
 * hooks are present so R4 stays quiet).
 */

#ifndef SYNCLINT_CORPUS_R3_CHAOS_H
#define SYNCLINT_CORPUS_R3_CHAOS_H

#include <atomic>
#include <cstdint>

#include "support.h"

namespace corpus {

class ChaosBlindCounter
{
  public:
    void
    add(std::uint64_t delta)
    {
        sync_scope::noteAttempt();
        std::uint64_t cur = bits_.load(std::memory_order_relaxed);
        while (!bits_.compare_exchange_weak( // PLANT(R3) retry loop without forcedCasFail
            cur, cur + delta, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
            sync_scope::noteRetry();
        }
    }

    void
    addHooked(std::uint64_t delta)
    {
        sync_scope::noteAttempt();
        std::uint64_t cur = bits_.load(std::memory_order_relaxed);
        while (sync_chaos::forcedCasFail() ||
               !bits_.compare_exchange_weak(
                   cur, cur + delta, std::memory_order_acq_rel,
                   std::memory_order_relaxed)) {
            sync_scope::noteRetry(); // clean: chaos hook in condition
        }
    }

    std::uint64_t
    read() const
    {
        return bits_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<std::uint64_t> bits_{0};
};

} // namespace corpus

#endif // SYNCLINT_CORPUS_R3_CHAOS_H
