/**
 * @file
 * R3 fixtures: CAS retry loops in the sync root must invoke the
 * sync_chaos fault-injection hook.  Lines tagged PLANT(R3) must each
 * produce exactly one R3 finding (and nothing else: the Sync-Scope
 * hooks are present so R4 stays quiet).
 */

#ifndef SYNCLINT_CORPUS_R3_CHAOS_H
#define SYNCLINT_CORPUS_R3_CHAOS_H

#include <atomic>
#include <cstdint>

#include "support.h"

namespace corpus {

class ChaosBlindCounter
{
  public:
    void
    add(std::uint64_t delta)
    {
        sync_scope::noteAttempt();
        std::uint64_t cur = bits_.load(std::memory_order_relaxed);
        while (!bits_.compare_exchange_weak( // PLANT(R3) retry loop without forcedCasFail
            cur, cur + delta, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
            sync_scope::noteRetry();
        }
    }

    void
    addHooked(std::uint64_t delta)
    {
        sync_scope::noteAttempt();
        std::uint64_t cur = bits_.load(std::memory_order_relaxed);
        while (sync_chaos::forcedCasFail() ||
               !bits_.compare_exchange_weak(
                   cur, cur + delta, std::memory_order_acq_rel,
                   std::memory_order_relaxed)) {
            sync_scope::noteRetry(); // clean: chaos hook in condition
        }
    }

    std::uint64_t
    read() const
    {
        return bits_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<std::uint64_t> bits_{0};
};

/**
 * Vyukov-queue shape: a sequence-guarded position-claim loop.  The
 * CAS is the ring-cell claim; skipping the chaos hook here would let
 * fault injection miss the exact retry window the MPMC queue relies
 * on, so the lint must flag it like any head-swing loop.
 */
class ChaosBlindRing
{
  public:
    bool
    tryClaim()
    {
        sync_scope::noteAttempt();
        std::uint64_t pos =
            enqueuePos_.load(std::memory_order_relaxed);
        for (;;) {
            const std::uint64_t seq =
                cellSeq_.load(std::memory_order_acquire);
            if (seq != pos)
                return false; // cell not ready: queue full here
            if (enqueuePos_.compare_exchange_weak( // PLANT(R3) seq-guarded claim loop without forcedCasFail
                    pos, pos + 1, std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                return true;
            sync_scope::noteRetry();
        }
    }

    bool
    tryClaimHooked()
    {
        sync_scope::noteAttempt();
        std::uint64_t pos =
            enqueuePos_.load(std::memory_order_relaxed);
        for (;;) {
            const std::uint64_t seq =
                cellSeq_.load(std::memory_order_acquire);
            if (seq != pos)
                return false;
            if (!sync_chaos::forcedCasFail() &&
                enqueuePos_.compare_exchange_weak(
                    pos, pos + 1, std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                return true; // clean: chaos hook guards the claim
            sync_scope::noteRetry();
        }
    }

  private:
    alignas(64) std::atomic<std::uint64_t> cellSeq_{0};
    alignas(64) std::atomic<std::uint64_t> enqueuePos_{0};
};

} // namespace corpus

#endif // SYNCLINT_CORPUS_R3_CHAOS_H
