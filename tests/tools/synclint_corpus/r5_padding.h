/**
 * @file
 * R5 fixtures: records holding multiple atomics must pad them to
 * separate cache lines.  The line tagged PLANT(R5) must produce
 * exactly one R5 finding; the padded and allowlisted records must
 * not.
 */

#ifndef SYNCLINT_CORPUS_R5_PADDING_H
#define SYNCLINT_CORPUS_R5_PADDING_H

#include <atomic>
#include <cstdint>

namespace corpus {

struct SharedLineCounters // PLANT(R5) two atomics on one cache line
{
    std::atomic<std::uint64_t> produced{0};
    std::atomic<std::uint64_t> consumed{0};
};

/** Compliant: both hot words padded to their own line. */
struct PaddedCounters
{
    alignas(64) std::atomic<std::uint64_t> enqueued{0};
    alignas(64) std::atomic<std::uint64_t> dequeued{0};
};

// synclint: allow(R5) corpus fixture exercising the allowlist pragma
struct DensePoolNode
{
    std::atomic<std::uint32_t> payload{0};
    std::atomic<std::uint32_t> link{0};
};

/** Single atomic: no intra-record sharing, out of R5 scope. */
struct LoneFlag
{
    std::atomic<bool> raised{false};
    std::uint64_t payload = 0;
};

} // namespace corpus

#endif // SYNCLINT_CORPUS_R5_PADDING_H
