/**
 * @file
 * R1 fixtures: atomic operations without an explicit memory_order.
 * Lines tagged PLANT(R1) must each produce exactly one R1 finding.
 */

#ifndef SYNCLINT_CORPUS_R1_ORDERS_H
#define SYNCLINT_CORPUS_R1_ORDERS_H

#include <atomic>
#include <cstdint>

namespace corpus {

class ImplicitOrderCounter
{
  public:
    std::uint64_t
    read() const
    {
        return hits_.load(); // PLANT(R1) implicit seq_cst load
    }

    void
    write(std::uint64_t v)
    {
        hits_.store(v); // PLANT(R1) implicit seq_cst store
    }

    void
    bump()
    {
        hits_.fetch_add(1); // PLANT(R1) implicit seq_cst fetch_add
    }

    void
    bumpOperator()
    {
        ++hits_; // PLANT(R1) operator-form access, implicit seq_cst
    }

    void
    assignOperator()
    {
        hits_ = 0; // PLANT(R1) operator-form store, implicit seq_cst
    }

    std::uint64_t
    readExplicit() const
    {
        return hits_.load(std::memory_order_acquire); // clean
    }

  private:
    std::atomic<std::uint64_t> hits_{0};
};

} // namespace corpus

#endif // SYNCLINT_CORPUS_R1_ORDERS_H
