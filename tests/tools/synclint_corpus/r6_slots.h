/**
 * @file
 * R6 fixtures: every handle kind in the SyncObjKind enum must have a
 * matching group in the FastSlot slot-table union.  The line tagged
 * PLANT(R6) is the enumerator with no slot-table group.
 *
 * These mirror the real pair in src/core/world.h and
 * src/engine/fast_context.h; the corpus run resolves the names
 * against this file instead.
 */

#ifndef SYNCLINT_CORPUS_R6_SLOTS_H
#define SYNCLINT_CORPUS_R6_SLOTS_H

#include <atomic>
#include <cstdint>

namespace corpus {

struct FakeBarrier;
struct FakeLock;
struct FakeQueue;
struct FakeLockedQueue;

enum class SyncObjKind : std::uint8_t
{
    Barrier,
    Lock,
    Rwlock, // PLANT(R6) no 'rwlock' group in the FastSlot union
    Queue,  // clean: 'queue' group registered below
    Deque,  // PLANT(R6) no 'deque' group in the FastSlot union
};

struct FastSlot
{
    SyncObjKind kind = SyncObjKind::Barrier;
    union
    {
        struct
        {
            FakeBarrier* sense;
            std::atomic<std::uint64_t>* gen;
        } barrier;
        struct
        {
            FakeLock* impl;
        } lock;
        // Two-realization group (the S3/S4 split the real table
        // uses): the group name, not its member count, is the
        // registration the rule checks.
        struct
        {
            FakeQueue* lockFree;
            FakeLockedQueue* locked;
        } queue;
    };
};

} // namespace corpus

#endif // SYNCLINT_CORPUS_R6_SLOTS_H
