#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class CholeskyTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(CholeskyTest, FactorsAndVerifies)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("size", std::int64_t{64});
    config.params.set("block", std::int64_t{8});
    RunResult result = testutil::runVerified("cholesky", config);
    EXPECT_GT(result.totals.ticketOps, 0u);
    EXPECT_GT(result.totals.stackOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CholeskyTest,
                         testutil::standardCases(), testutil::caseName);

TEST(CholeskyProperties, BlockVariants)
{
    for (std::int64_t block : {4, 16}) {
        RunConfig config = testutil::makeConfig(
            {4, SuiteVersion::Splash3, EngineKind::Sim});
        config.params.set("size", std::int64_t{64});
        config.params.set("block", block);
        testutil::runVerified("cholesky", config);
    }
}

TEST(CholeskyProperties, TaskCountMatchesSchedule)
{
    // Each trailing update is pushed and popped exactly once: stack
    // op count = 2 * sum_k T(nb-k-1) pushes/pops + empty probes.
    RunConfig config = testutil::makeConfig(
        {2, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("size", std::int64_t{32});
    config.params.set("block", std::int64_t{8});
    RunResult result = testutil::runVerified("cholesky", config);
    // nb = 4: tasks = sum over k of (nb-k-1)(nb-k)/2 = 6+3+1+0 = 10.
    // 10 pushes + >=10 successful pops; the rest are empty probes.
    EXPECT_GE(result.totals.stackOps, 20u);
}

} // namespace
} // namespace splash
