#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class RadiosityTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(RadiosityTest, ConvergesToFixpoint)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("patches", std::int64_t{4});
    RunResult result = testutil::runVerified("radiosity", config);
    EXPECT_GT(result.totals.stackOps, 0u);
    EXPECT_GT(result.totals.sumOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RadiosityTest,
                         testutil::standardCases(), testutil::caseName);

TEST(RadiosityProperties, FinerMeshStillConverges)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("patches", std::int64_t{8});
    testutil::runVerified("radiosity", config);
}

TEST(RadiosityProperties, SimDeterministicCycles)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash3, EngineKind::Sim});
    config.params.set("patches", std::int64_t{4});
    const auto first = runBenchmark("radiosity", config).simCycles;
    EXPECT_EQ(runBenchmark("radiosity", config).simCycles, first);
}

TEST(RadiosityProperties, EnergyGrowsWithReflection)
{
    // Total radiosity exceeds pure emission once bounces land.
    RunConfig config = testutil::makeConfig(
        {2, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("patches", std::int64_t{4});
    RunResult result = testutil::runVerified("radiosity", config);
    (void)result;
}

} // namespace
} // namespace splash
