/**
 * @file
 * Shared helpers for the per-benchmark test suites: a standard
 * (threads x suite x engine) sweep plus convenience runners.
 */

#ifndef SPLASH_TESTS_SUITE_TEST_UTIL_H
#define SPLASH_TESTS_SUITE_TEST_UTIL_H

#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"
#include "harness/suite.h"

namespace splash {
namespace testutil {

struct SuiteCase
{
    int threads;
    SuiteVersion suite;
    EngineKind engine;
};

inline std::string
caseName(const ::testing::TestParamInfo<SuiteCase>& info)
{
    return std::string(toString(info.param.suite)) + "_" +
           toString(info.param.engine) + "_t" +
           std::to_string(info.param.threads);
}

/** The standard sweep every benchmark is exercised under. */
inline auto
standardCases()
{
    return ::testing::Values(
        SuiteCase{1, SuiteVersion::Splash3, EngineKind::Native},
        SuiteCase{4, SuiteVersion::Splash3, EngineKind::Native},
        SuiteCase{4, SuiteVersion::Splash4, EngineKind::Native},
        SuiteCase{1, SuiteVersion::Splash4, EngineKind::Sim},
        SuiteCase{3, SuiteVersion::Splash3, EngineKind::Sim},
        SuiteCase{4, SuiteVersion::Splash4, EngineKind::Sim},
        SuiteCase{8, SuiteVersion::Splash4, EngineKind::Sim});
}

/** Build a RunConfig for a case with the test machine profile. */
inline RunConfig
makeConfig(const SuiteCase& c)
{
    registerAllBenchmarks();
    RunConfig config;
    config.threads = c.threads;
    config.suite = c.suite;
    config.engine = c.engine;
    config.profile = "test4";
    return config;
}

/** Run and assert verification succeeded. */
inline RunResult
runVerified(const std::string& name, const RunConfig& config)
{
    RunResult result = runBenchmark(name, config);
    EXPECT_TRUE(result.verified) << name << ": "
                                 << result.verifyMessage;
    return result;
}

} // namespace testutil
} // namespace splash

#endif // SPLASH_TESTS_SUITE_TEST_UTIL_H
