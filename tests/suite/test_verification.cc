#include "suite_test_util.h"

namespace splash {
namespace {

/**
 * Negative tests: the per-benchmark verifiers are the reproduction's
 * safety net, so prove they actually reject bad runs instead of
 * rubber-stamping them.
 */

TEST(VerificationCatches, OceanStoppedTooEarly)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("grid", std::int64_t{96});
    config.params.set("iterations", std::int64_t{1});
    RunResult result = runBenchmark("ocean", config);
    EXPECT_FALSE(result.verified);
    EXPECT_NE(result.verifyMessage.find("converge"),
              std::string::npos);
}

TEST(VerificationCatches, RadiosityStoppedTooEarly)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("patches", std::int64_t{4});
    config.params.set("iterations", std::int64_t{1});
    RunResult result = runBenchmark("radiosity", config);
    EXPECT_FALSE(result.verified);
}

TEST(VerificationCatches, WaterWithoutStepsHasNoEnergies)
{
    RunConfig config = testutil::makeConfig(
        {2, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("molecules", std::int64_t{64});
    config.params.set("steps", std::int64_t{0});
    RunResult result = runBenchmark("water-nsquared", config);
    EXPECT_FALSE(result.verified);
}

TEST(VerificationCatches, MessagesAreInformativeOnSuccess)
{
    RunConfig config = testutil::makeConfig(
        {2, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("keys", std::int64_t{1024});
    config.params.set("bits", std::int64_t{4});
    RunResult result = runBenchmark("radix", config);
    EXPECT_TRUE(result.verified);
    EXPECT_FALSE(result.verifyMessage.empty());
}

} // namespace
} // namespace splash
