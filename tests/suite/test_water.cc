#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class WaterNsqTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(WaterNsqTest, MomentumConserved)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("molecules", std::int64_t{64});
    config.params.set("steps", std::int64_t{2});
    RunResult result = testutil::runVerified("water-nsquared", config);
    EXPECT_GT(result.totals.sumOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WaterNsqTest,
                         testutil::standardCases(), testutil::caseName);

class WaterSpTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(WaterSpTest, MomentumConserved)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("molecules", std::int64_t{64});
    config.params.set("steps", std::int64_t{2});
    RunResult result = testutil::runVerified("water-spatial", config);
    EXPECT_GT(result.totals.lockAcquires, 0u);
    EXPECT_GT(result.totals.sumOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WaterSpTest,
                         testutil::standardCases(), testutil::caseName);

TEST(WaterProperties, OddMoleculeCount)
{
    // The cyclic half-matrix pair rule has an N-even special case;
    // exercise both parities.
    for (std::int64_t n : {63, 64}) {
        RunConfig config = testutil::makeConfig(
            {3, SuiteVersion::Splash4, EngineKind::Sim});
        config.params.set("molecules", n);
        config.params.set("steps", std::int64_t{1});
        testutil::runVerified("water-nsquared", config);
    }
}

TEST(WaterProperties, SpatialAndNsquaredAgreeOnPairCounts)
{
    // With an identical box both apps simulate the same physics; the
    // spatial version must stay verified across several steps too.
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("molecules", std::int64_t{125});
    config.params.set("steps", std::int64_t{4});
    testutil::runVerified("water-spatial", config);
    testutil::runVerified("water-nsquared", config);
}

TEST(WaterProperties, SimDeterministicCycles)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash3, EngineKind::Sim});
    config.params.set("molecules", std::int64_t{64});
    config.params.set("steps", std::int64_t{2});
    const auto a = runBenchmark("water-spatial", config).simCycles;
    EXPECT_EQ(runBenchmark("water-spatial", config).simCycles, a);
}

} // namespace
} // namespace splash
