#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class RaytraceTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(RaytraceTest, ImageMatchesSerialReference)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("width", std::int64_t{64});
    config.params.set("height", std::int64_t{64});
    config.params.set("spheres", std::int64_t{8});
    RunResult result = testutil::runVerified("raytrace", config);
    EXPECT_GT(result.totals.ticketOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RaytraceTest,
                         testutil::standardCases(), testutil::caseName);

TEST(RaytraceProperties, NonSquareImage)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("width", std::int64_t{96});
    config.params.set("height", std::int64_t{32});
    config.params.set("spheres", std::int64_t{8});
    testutil::runVerified("raytrace", config);
}

TEST(RaytraceProperties, TileCountMatchesTicketOps)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("width", std::int64_t{64});
    config.params.set("height", std::int64_t{64});
    config.params.set("spheres", std::int64_t{4});
    RunResult result = testutil::runVerified("raytrace", config);
    // 16 tiles claimed + 4 failed claims (one per thread at exit).
    EXPECT_EQ(result.totals.ticketOps, 16u + 4u);
}

TEST(RaytraceProperties, MoreSpheresMoreWork)
{
    auto work_for = [&](std::int64_t spheres) {
        RunConfig config = testutil::makeConfig(
            {2, SuiteVersion::Splash4, EngineKind::Sim});
        config.params.set("width", std::int64_t{64});
        config.params.set("height", std::int64_t{64});
        config.params.set("spheres", spheres);
        return testutil::runVerified("raytrace", config)
            .totals.workUnits;
    };
    EXPECT_GT(work_for(16), work_for(4));
}

} // namespace
} // namespace splash
