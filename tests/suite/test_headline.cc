#include "suite_test_util.h"

namespace splash {
namespace {

/**
 * The paper's headline claims, as properties: at a contended thread
 * count, every benchmark's Splash-4 variant must be at least as fast
 * as its Splash-3 variant under the machine model, and Splash-4 must
 * show parallel speedup over its own single-threaded run.
 */
class HeadlineTest : public ::testing::TestWithParam<const char*>
{
  protected:
    VTime
    cycles(SuiteVersion suite, int threads)
    {
        RunConfig config = testutil::makeConfig(
            {threads, suite, EngineKind::Sim});
        config.profile = "epyc64";
        config.params.set("keys", std::int64_t{8192});
        config.params.set("bits", std::int64_t{6});
        config.params.set("points", std::int64_t{4096});
        config.params.set("size", std::int64_t{128});
        config.params.set("block", std::int64_t{16});
        config.params.set("grid", std::int64_t{48});
        config.params.set("bodies", std::int64_t{512});
        config.params.set("steps", std::int64_t{1});
        config.params.set("molecules", std::int64_t{125});
        config.params.set("particles", std::int64_t{512});
        config.params.set("levels", std::int64_t{3});
        config.params.set("patches", std::int64_t{4});
        config.params.set("width", std::int64_t{64});
        config.params.set("height", std::int64_t{64});
        config.params.set("volume", std::int64_t{24});
        config.params.set("spheres", std::int64_t{16});
        return testutil::runVerified(GetParam(), config).simCycles;
    }
};

TEST_P(HeadlineTest, Splash4NoSlowerAt16Threads)
{
    EXPECT_LE(cycles(SuiteVersion::Splash4, 16),
              cycles(SuiteVersion::Splash3, 16));
}

TEST_P(HeadlineTest, Splash4ScalesFrom1To16Threads)
{
    EXPECT_LT(cycles(SuiteVersion::Splash4, 16),
              cycles(SuiteVersion::Splash4, 1));
}

INSTANTIATE_TEST_SUITE_P(
    Suite, HeadlineTest,
    ::testing::Values("barnes", "fmm", "ocean", "radiosity",
                      "raytrace", "volrend", "water-nsquared",
                      "water-spatial", "cholesky", "fft", "lu",
                      "radix"),
    [](const auto& param_info) {
        std::string name = param_info.param;
        for (auto& ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
} // namespace splash
