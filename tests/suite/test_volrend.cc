#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class VolrendTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(VolrendTest, ImageMatchesSerialReference)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("volume", std::int64_t{16});
    config.params.set("width", std::int64_t{32});
    config.params.set("height", std::int64_t{32});
    RunResult result = testutil::runVerified("volrend", config);
    EXPECT_GT(result.totals.ticketOps, 0u);
    EXPECT_GT(result.totals.workUnits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, VolrendTest,
                         testutil::standardCases(), testutil::caseName);

TEST(VolrendProperties, LargerVolumeMoreSteps)
{
    auto work_for = [&](std::int64_t volume) {
        RunConfig config = testutil::makeConfig(
            {2, SuiteVersion::Splash4, EngineKind::Sim});
        config.params.set("volume", volume);
        config.params.set("width", std::int64_t{32});
        config.params.set("height", std::int64_t{32});
        return testutil::runVerified("volrend", config)
            .totals.workUnits;
    };
    EXPECT_GT(work_for(32), work_for(8));
}

TEST(VolrendProperties, SimDeterministicCycles)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash3, EngineKind::Sim});
    config.params.set("volume", std::int64_t{16});
    config.params.set("width", std::int64_t{32});
    config.params.set("height", std::int64_t{32});
    const auto first = runBenchmark("volrend", config).simCycles;
    EXPECT_EQ(runBenchmark("volrend", config).simCycles, first);
}

} // namespace
} // namespace splash
