#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class RadixTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(RadixTest, SortsAndVerifies)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("keys", std::int64_t{4096});
    config.params.set("bits", std::int64_t{4});
    RunResult result = testutil::runVerified("radix", config);
    EXPECT_GT(result.totals.barrierCrossings, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RadixTest, testutil::standardCases(),
                         testutil::caseName);

TEST(RadixProperties, OddKeyCountAndUnevenChunks)
{
    RunConfig config = testutil::makeConfig(
        {3, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("keys", std::int64_t{1000});
    config.params.set("bits", std::int64_t{4});
    testutil::runVerified("radix", config);
}

TEST(RadixProperties, WideDigits)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash3, EngineKind::Sim});
    config.params.set("keys", std::int64_t{2048});
    config.params.set("bits", std::int64_t{11}); // 3 passes, 2048 buckets
    testutil::runVerified("radix", config);
}

TEST(RadixProperties, SimDeterministicCycles)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("keys", std::int64_t{2048});
    config.params.set("bits", std::int64_t{4});
    const auto first = runBenchmark("radix", config).simCycles;
    EXPECT_EQ(runBenchmark("radix", config).simCycles, first);
}

TEST(RadixProperties, DifferentSeedsStillSort)
{
    for (std::int64_t seed : {2, 99, 12345}) {
        RunConfig config = testutil::makeConfig(
            {4, SuiteVersion::Splash4, EngineKind::Sim});
        config.params.set("keys", std::int64_t{1024});
        config.params.set("bits", std::int64_t{4});
        config.params.set("seed", seed);
        testutil::runVerified("radix", config);
    }
}

} // namespace
} // namespace splash
