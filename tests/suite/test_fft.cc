#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class FftTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(FftTest, RoundTripAndParseval)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("points", std::int64_t{1024});
    RunResult result = testutil::runVerified("fft", config);
    EXPECT_GT(result.totals.barrierCrossings, 0u);
    EXPECT_GT(result.totals.sumOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FftTest, testutil::standardCases(),
                         testutil::caseName);

TEST(FftProperties, ThreadsExceedingRows)
{
    // 256 points -> 16 rows; 8 threads stripe 2 rows each; verify a
    // config where some stripes are smaller than others.
    RunConfig config = testutil::makeConfig(
        {8, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("points", std::int64_t{256});
    testutil::runVerified("fft", config);
}

TEST(FftProperties, SeveralSizes)
{
    for (std::int64_t points : {64, 256, 4096}) {
        RunConfig config = testutil::makeConfig(
            {4, SuiteVersion::Splash3, EngineKind::Sim});
        config.params.set("points", points);
        testutil::runVerified("fft", config);
    }
}

TEST(FftProperties, SimDeterministicCycles)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("points", std::int64_t{1024});
    const auto first = runBenchmark("fft", config).simCycles;
    EXPECT_EQ(runBenchmark("fft", config).simCycles, first);
}

} // namespace
} // namespace splash
