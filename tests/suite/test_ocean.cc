#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class OceanTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(OceanTest, ConvergesAndVerifies)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("grid", std::int64_t{32});
    RunResult result = testutil::runVerified("ocean", config);
    EXPECT_GT(result.totals.barrierCrossings, 0u);
    EXPECT_GT(result.totals.sumOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OceanTest, testutil::standardCases(),
                         testutil::caseName);

TEST(OceanProperties, GridNotDivisibleByThreads)
{
    RunConfig config = testutil::makeConfig(
        {5, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("grid", std::int64_t{33});
    testutil::runVerified("ocean", config);
}

TEST(OceanProperties, MultigridConvergesAcrossSizes)
{
    // Sizes that exercise different hierarchy depths (the requested
    // grid is rounded so interior+1 is a multiple of 8).
    for (std::int64_t grid : {16, 39, 64, 96}) {
        RunConfig config = testutil::makeConfig(
            {4, SuiteVersion::Splash4, EngineKind::Sim});
        config.params.set("grid", grid);
        testutil::runVerified("ocean", config);
    }
}

TEST(OceanProperties, MultigridBeatsPlainSmoothingPerCycle)
{
    // A 64-grid solve must converge in a handful of V-cycles; pure
    // smoothing would need hundreds of sweeps.  Barrier crossings are
    // a faithful proxy for sweeps here.
    RunConfig config = testutil::makeConfig(
        {2, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("grid", std::int64_t{64});
    RunResult result = testutil::runVerified("ocean", config);
    // <= 15 V-cycles, each bounded by ~220 barrier crossings/thread.
    EXPECT_LT(result.totals.barrierCrossings / 2, 4000u);
}

TEST(OceanProperties, SimDeterministicCycles)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash3, EngineKind::Sim});
    config.params.set("grid", std::int64_t{32});
    const auto first = runBenchmark("ocean", config).simCycles;
    EXPECT_EQ(runBenchmark("ocean", config).simCycles, first);
}

TEST(OceanProperties, SweepCountIndependentOfThreads)
{
    // The numerical iteration count must not depend on parallelism;
    // total barrier crossings scale linearly with the thread count.
    auto sweeps_for = [&](int threads) {
        RunConfig config = testutil::makeConfig(
            {threads, SuiteVersion::Splash4, EngineKind::Sim});
        config.params.set("grid", std::int64_t{32});
        RunResult r = testutil::runVerified("ocean", config);
        return r.totals.barrierCrossings / threads;
    };
    EXPECT_EQ(sweeps_for(1), sweeps_for(4));
}

} // namespace
} // namespace splash
