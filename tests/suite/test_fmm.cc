#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class FmmTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(FmmTest, PotentialsMatchDirectSum)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("particles", std::int64_t{256});
    config.params.set("levels", std::int64_t{3});
    RunResult result = testutil::runVerified("fmm", config);
    EXPECT_GT(result.totals.ticketOps, 0u);
    EXPECT_GT(result.totals.barrierCrossings, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FmmTest, testutil::standardCases(),
                         testutil::caseName);

TEST(FmmProperties, DeeperTreeStillAccurate)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("particles", std::int64_t{512});
    config.params.set("levels", std::int64_t{4});
    testutil::runVerified("fmm", config);
}

TEST(FmmProperties, HigherOrderIsMoreAccurate)
{
    // Verify() enforces a fixed tolerance; higher order must also
    // pass, and with strictly more work.
    auto work_for = [&](std::int64_t terms) {
        RunConfig config = testutil::makeConfig(
            {2, SuiteVersion::Splash4, EngineKind::Sim});
        config.params.set("particles", std::int64_t{256});
        config.params.set("terms", terms);
        return testutil::runVerified("fmm", config).totals.workUnits;
    };
    EXPECT_GT(work_for(14), work_for(6));
}

TEST(FmmProperties, MinimumLevels)
{
    RunConfig config = testutil::makeConfig(
        {3, SuiteVersion::Splash3, EngineKind::Sim});
    config.params.set("particles", std::int64_t{64});
    config.params.set("levels", std::int64_t{2});
    testutil::runVerified("fmm", config);
}

} // namespace
} // namespace splash
