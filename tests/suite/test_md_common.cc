#include <gtest/gtest.h>

#include <cmath>

#include "apps/md_common.h"

namespace splash {
namespace {

TEST(MdCommon, MinImageFoldsIntoHalfBox)
{
    const double box = 10.0;
    EXPECT_DOUBLE_EQ(minImage(3.0, box), 3.0);
    EXPECT_DOUBLE_EQ(minImage(6.0, box), -4.0);
    EXPECT_DOUBLE_EQ(minImage(-6.0, box), 4.0);
    EXPECT_DOUBLE_EQ(minImage(-3.0, box), -3.0);
}

TEST(MdCommon, WrapCoordIntoBox)
{
    const double box = 5.0;
    EXPECT_DOUBLE_EQ(wrapCoord(1.0, box), 1.0);
    EXPECT_DOUBLE_EQ(wrapCoord(6.5, box), 1.5);
    EXPECT_DOUBLE_EQ(wrapCoord(-0.5, box), 4.5);
    EXPECT_DOUBLE_EQ(wrapCoord(5.0, box), 0.0);
}

TEST(MdCommon, LjPairZeroBeyondCutoff)
{
    double fx, fy, fz;
    const double pot = ljPair(3.0, 0.0, 0.0, 2.5 * 2.5, fx, fy, fz);
    EXPECT_DOUBLE_EQ(pot, 0.0);
    EXPECT_DOUBLE_EQ(fx, 0.0);
}

TEST(MdCommon, LjPairRepulsiveUpClose)
{
    double fx, fy, fz;
    // r = 0.9 sigma: strong repulsion pushing i away from j
    // (displacement is r_i - r_j = +0.9 on x).
    const double pot = ljPair(0.9, 0.0, 0.0, 6.25, fx, fy, fz);
    EXPECT_GT(pot, 0.0);
    EXPECT_GT(fx, 0.0);
    EXPECT_DOUBLE_EQ(fy, 0.0);
}

TEST(MdCommon, LjPairAttractiveAtMediumRange)
{
    double fx, fy, fz;
    // r = 1.5 sigma: attraction pulls i toward j.
    const double pot = ljPair(1.5, 0.0, 0.0, 6.25, fx, fy, fz);
    EXPECT_LT(pot, 0.0);
    EXPECT_LT(fx, 0.0);
}

TEST(MdCommon, LjMinimumAtCanonicalDistance)
{
    // Potential minimum at r = 2^(1/6) sigma: force ~ 0 there.
    const double rmin = std::pow(2.0, 1.0 / 6.0);
    double fx, fy, fz;
    ljPair(rmin, 0.0, 0.0, 6.25, fx, fy, fz);
    EXPECT_NEAR(fx, 0.0, 1e-12);
}

TEST(MdCommon, LatticeInitZeroMomentumAndInBox)
{
    Rng rng(3);
    const double box = 6.0;
    MdState s = initLattice(125, box, rng);
    double mx = 0, my = 0, mz = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        EXPECT_GE(s.px[i], 0.0);
        EXPECT_LT(s.px[i], box);
        EXPECT_GE(s.py[i], 0.0);
        EXPECT_LT(s.py[i], box);
        mx += s.vx[i];
        my += s.vy[i];
        mz += s.vz[i];
    }
    EXPECT_NEAR(mx, 0.0, 1e-10);
    EXPECT_NEAR(my, 0.0, 1e-10);
    EXPECT_NEAR(mz, 0.0, 1e-10);
}

TEST(MdCommon, LatticeKeepsMinimumSeparation)
{
    Rng rng(4);
    const double box = 6.0;
    MdState s = initLattice(216, box, rng);
    // Jittered lattice: no two molecules closer than ~0.3 cells.
    const double cell = box / 6.0;
    double min_d2 = 1e30;
    for (std::size_t i = 0; i < s.size(); ++i) {
        for (std::size_t j = i + 1; j < s.size(); ++j) {
            const double dx = minImage(s.px[i] - s.px[j], box);
            const double dy = minImage(s.py[i] - s.py[j], box);
            const double dz = minImage(s.pz[i] - s.pz[j], box);
            min_d2 = std::min(min_d2,
                              dx * dx + dy * dy + dz * dz);
        }
    }
    EXPECT_GT(std::sqrt(min_d2), 0.5 * cell);
}

} // namespace
} // namespace splash
