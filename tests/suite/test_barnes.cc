#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class BarnesTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(BarnesTest, TreeCompleteAndForcesAccurate)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("bodies", std::int64_t{256});
    config.params.set("steps", std::int64_t{1});
    RunResult result = testutil::runVerified("barnes", config);
    EXPECT_GT(result.totals.lockAcquires, 0u);
    EXPECT_GT(result.totals.ticketOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BarnesTest, testutil::standardCases(),
                         testutil::caseName);

TEST(BarnesProperties, MoreThreadsThanWorkBatches)
{
    RunConfig config = testutil::makeConfig(
        {16, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("bodies", std::int64_t{64});
    config.params.set("steps", std::int64_t{1});
    testutil::runVerified("barnes", config);
}

TEST(BarnesProperties, ZeroStepsStillBuildsTree)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("bodies", std::int64_t{128});
    config.params.set("steps", std::int64_t{0});
    testutil::runVerified("barnes", config);
}

TEST(BarnesProperties, SimDeterministicCycles)
{
    RunConfig config = testutil::makeConfig(
        {4, SuiteVersion::Splash3, EngineKind::Sim});
    config.params.set("bodies", std::int64_t{128});
    config.params.set("steps", std::int64_t{1});
    const auto first = runBenchmark("barnes", config).simCycles;
    EXPECT_EQ(runBenchmark("barnes", config).simCycles, first);
}

TEST(BarnesProperties, SeedsVaryButAlwaysVerify)
{
    for (std::int64_t seed : {7, 1234}) {
        RunConfig config = testutil::makeConfig(
            {4, SuiteVersion::Splash4, EngineKind::Sim});
        config.params.set("bodies", std::int64_t{200});
        config.params.set("steps", std::int64_t{1});
        config.params.set("seed", seed);
        testutil::runVerified("barnes", config);
    }
}

} // namespace
} // namespace splash
