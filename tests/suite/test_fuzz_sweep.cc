#include "suite_test_util.h"

namespace splash {
namespace {

/**
 * Randomized-input sweep: every benchmark must verify for several
 * seeds and two input sizes, under the suite generation and thread
 * count derived from the seed.  One parameterized harness instead of
 * copy-pasted cases; sizes are kept small so the whole sweep stays
 * fast.
 */
struct FuzzCase
{
    const char* name;
    std::int64_t seed;
    int sizeClass; // 0 = small, 1 = medium
};

class SuiteFuzzTest : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(SuiteFuzzTest, VerifiesUnderRandomizedInputs)
{
    const auto& c = GetParam();
    const SuiteVersion suite = (c.seed % 2 == 0)
                                   ? SuiteVersion::Splash3
                                   : SuiteVersion::Splash4;
    const int threads = 2 + static_cast<int>(c.seed % 5);

    RunConfig config =
        testutil::makeConfig({threads, suite, EngineKind::Sim});
    config.params.set("seed", c.seed);
    const std::int64_t size = c.sizeClass;
    config.params.set("keys", std::int64_t{1024} << (2 * size));
    config.params.set("bits", std::int64_t{4});
    config.params.set("points", std::int64_t{256} << (2 * size));
    config.params.set("size", std::int64_t{32} << size);
    config.params.set("block", std::int64_t{8});
    config.params.set("grid", std::int64_t{16} << size);
    config.params.set("bodies", std::int64_t{96} << size);
    config.params.set("steps", std::int64_t{1});
    config.params.set("molecules", std::int64_t{50} << size);
    config.params.set("particles", std::int64_t{96} << size);
    config.params.set("levels", std::int64_t{2 + size});
    config.params.set("patches", std::int64_t{3 + size});
    config.params.set("width", std::int64_t{32} << size);
    config.params.set("height", std::int64_t{32});
    config.params.set("volume", std::int64_t{12} << size);
    config.params.set("spheres", std::int64_t{5} << size);

    testutil::runVerified(c.name, config);
}

std::string
fuzzName(const ::testing::TestParamInfo<FuzzCase>& info)
{
    std::string name = info.param.name;
    for (auto& ch : name)
        if (ch == '-')
            ch = '_';
    return name + "_s" + std::to_string(info.param.seed) + "_c" +
           std::to_string(info.param.sizeClass);
}

std::vector<FuzzCase>
makeCases()
{
    static const char* names[] = {
        "barnes",    "fmm",     "ocean",          "radiosity",
        "raytrace",  "volrend", "water-nsquared", "water-spatial",
        "cholesky",  "fft",     "lu",             "radix",
    };
    std::vector<FuzzCase> cases;
    for (const char* name : names)
        for (std::int64_t seed : {11, 42, 1337})
            for (int size_class : {0, 1})
                cases.push_back({name, seed, size_class});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteFuzzTest,
                         ::testing::ValuesIn(makeCases()), fuzzName);

} // namespace
} // namespace splash
