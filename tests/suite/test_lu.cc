#include "suite_test_util.h"

namespace splash {
namespace {

using testutil::SuiteCase;

class LuTest : public ::testing::TestWithParam<SuiteCase>
{
};

TEST_P(LuTest, FactorsAndVerifies)
{
    RunConfig config = testutil::makeConfig(GetParam());
    config.params.set("size", std::int64_t{64});
    config.params.set("block", std::int64_t{8});
    RunResult result = testutil::runVerified("lu", config);
    EXPECT_GT(result.totals.barrierCrossings, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuTest, testutil::standardCases(),
                         testutil::caseName);

TEST(LuProperties, BlockSizeVariants)
{
    for (std::int64_t block : {4, 16, 32}) {
        RunConfig config = testutil::makeConfig(
            {4, SuiteVersion::Splash4, EngineKind::Sim});
        config.params.set("size", std::int64_t{64});
        config.params.set("block", block);
        testutil::runVerified("lu", config);
    }
}

TEST(LuProperties, MoreThreadsThanBlocks)
{
    // 2x2 blocks but 8 threads: most threads idle most steps.
    RunConfig config = testutil::makeConfig(
        {8, SuiteVersion::Splash4, EngineKind::Sim});
    config.params.set("size", std::int64_t{32});
    config.params.set("block", std::int64_t{16});
    testutil::runVerified("lu", config);
}

TEST(LuProperties, SingleBlockMatrix)
{
    RunConfig config = testutil::makeConfig(
        {2, SuiteVersion::Splash3, EngineKind::Sim});
    config.params.set("size", std::int64_t{16});
    config.params.set("block", std::int64_t{16});
    testutil::runVerified("lu", config);
}

} // namespace
} // namespace splash
