// Loader contract for splash4-machine-v1 profile files: round-trips
// through the emitter, rejects malformed or unknown input loudly, and
// resolves file paths without recompiling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/machine.h"

namespace splash {
namespace {

std::string
validJson()
{
    return machineProfileToJson(machineProfile("test4"));
}

bool
parse(const std::string& text, MachineProfile& out, std::string& error)
{
    return parseMachineProfile(text, "test-input", out, error);
}

std::string
replaced(std::string text, const std::string& from,
         const std::string& to)
{
    const auto pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    if (pos != std::string::npos)
        text.replace(pos, from.size(), to);
    return text;
}

TEST(MachineProfileLoader, RoundTripPreservesContentHash)
{
    for (const auto& name : machineProfileNames()) {
        const MachineProfile& original = machineProfile(name);
        MachineProfile reparsed;
        std::string error;
        ASSERT_TRUE(parse(machineProfileToJson(original), reparsed,
                          error))
            << name << ": " << error;
        EXPECT_EQ(reparsed.name, original.name);
        EXPECT_EQ(reparsed.contentHash, original.contentHash) << name;
        EXPECT_EQ(machineProfileCanonicalText(reparsed),
                  machineProfileCanonicalText(original));
        for (int op = 0; op < kNumAtomicOps; ++op)
            for (int s = 0; s < kNumCoherenceStates; ++s)
                EXPECT_EQ(reparsed.atomicCycles[op][s],
                          original.atomicCycles[op][s]);
    }
}

TEST(MachineProfileLoader, ContentHashIgnoresNameAndDescription)
{
    MachineProfile a;
    MachineProfile b;
    std::string error;
    ASSERT_TRUE(parse(validJson(), a, error)) << error;
    std::string renamed =
        replaced(validJson(), "\"test4\"", "\"other-name\"");
    ASSERT_TRUE(parse(renamed, b, error)) << error;
    EXPECT_NE(a.name, b.name);
    EXPECT_EQ(a.contentHash, b.contentHash);
}

TEST(MachineProfileLoader, ContentHashCoversCosts)
{
    MachineProfile a;
    MachineProfile b;
    std::string error;
    ASSERT_TRUE(parse(validJson(), a, error)) << error;
    const std::string bumped =
        replaced(validJson(), "\"casRetryCycles\": 3",
                 "\"casRetryCycles\": 4");
    ASSERT_TRUE(parse(bumped, b, error)) << error;
    EXPECT_NE(a.contentHash, b.contentHash);
}

TEST(MachineProfileLoader, RejectsWrongSchema)
{
    MachineProfile out;
    std::string error;
    EXPECT_FALSE(parse(replaced(validJson(), "splash4-machine-v1",
                                "splash4-machine-v2"),
                       out, error));
    EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(MachineProfileLoader, RejectsUnknownTopLevelField)
{
    MachineProfile out;
    std::string error;
    const std::string text = replaced(
        validJson(), "\"topology\":", "\"frobnicate\": 1, \"topology\":");
    EXPECT_FALSE(parse(text, out, error));
    EXPECT_NE(error.find("frobnicate"), std::string::npos) << error;
}

TEST(MachineProfileLoader, RejectsMissingOpRow)
{
    MachineProfile out;
    std::string error;
    // Drop the whole swp row (keys are exhaustive, not defaulted).
    std::string text = validJson();
    const auto pos = text.find("\"swp\"");
    ASSERT_NE(pos, std::string::npos);
    const auto end = text.find('}', pos);
    ASSERT_NE(end, std::string::npos);
    auto start = text.rfind(',', pos);
    ASSERT_NE(start, std::string::npos);
    text.erase(start, end + 1 - start);
    EXPECT_FALSE(parse(text, out, error));
    EXPECT_NE(error.find("swp"), std::string::npos) << error;
}

TEST(MachineProfileLoader, RejectsMalformedTopology)
{
    MachineProfile out;
    std::string error;
    EXPECT_FALSE(parse(replaced(validJson(), "\"domains\": 1",
                                "\"domains\": 0"),
                       out, error));
    // Distance vector length must equal the domain count.
    EXPECT_FALSE(parse(replaced(validJson(),
                                "\"domainDistanceCycles\": [0]",
                                "\"domainDistanceCycles\": [0, 40]"),
                       out, error));
    // Self-distance must be zero.
    EXPECT_FALSE(parse(replaced(validJson(),
                                "\"domainDistanceCycles\": [0]",
                                "\"domainDistanceCycles\": [7]"),
                       out, error));
}

TEST(MachineProfileLoader, RejectsLlscRetryInAmoMode)
{
    MachineProfile out;
    std::string error;
    const std::string text = replaced(
        validJson(), "\"casRetryCycles\": 3",
        "\"casRetryCycles\": 3, \"llscRetryCycles\": 100");
    EXPECT_FALSE(parse(text, out, error));
    EXPECT_NE(error.find("llscRetryCycles"), std::string::npos)
        << error;
}

TEST(MachineProfileLoader, RequiresLlscRetryInLlscMode)
{
    MachineProfile out;
    std::string error;
    EXPECT_FALSE(parse(replaced(validJson(), "\"mode\": \"amo\"",
                                "\"mode\": \"llsc\""),
                       out, error));
    EXPECT_NE(error.find("llscRetryCycles"), std::string::npos)
        << error;
}

TEST(MachineProfileLoader, RejectsNonJson)
{
    MachineProfile out;
    std::string error;
    EXPECT_FALSE(parse("not json at all {", out, error));
    EXPECT_FALSE(error.empty());
}

TEST(MachineProfileLoader, RejectsBadName)
{
    MachineProfile out;
    std::string error;
    EXPECT_FALSE(parse(replaced(validJson(), "\"test4\"",
                                "\"Has Spaces\""),
                       out, error));
    EXPECT_NE(error.find("name"), std::string::npos) << error;
}

TEST(MachineProfileLoader, LoadsProfileFromFile)
{
    // --machine=<path.json> must work without recompiling: write a
    // variant profile to disk and resolve it through the registry.
    const std::string path =
        ::testing::TempDir() + "/parity_variant.json";
    std::string text = replaced(validJson(), "\"test4\"",
                                "\"file-variant\"");
    text = replaced(text, "\"workUnitCycles\": 1",
                    "\"workUnitCycles\": 9");
    {
        std::ofstream out(path);
        ASSERT_TRUE(out.good());
        out << text;
    }
    const MachineProfile& loaded = machineProfile(path);
    EXPECT_EQ(loaded.name, "file-variant");
    EXPECT_EQ(loaded.workUnitCycles, 9u);
    // Cached: resolving the same path returns the same object.
    EXPECT_EQ(&machineProfile(path), &loaded);
    std::remove(path.c_str());
}

TEST(MachineProfileLoader, BuiltinsCoverTheMatrix)
{
    const auto names = machineProfileNames();
    for (const char* required :
         {"epyc64", "icelake64", "t3-512", "sg2044", "power10",
          "test4"}) {
        bool found = false;
        for (const auto& name : names)
            found = found || name == required;
        EXPECT_TRUE(found) << required;
    }
    EXPECT_EQ(machineProfile("t3-512").maxThreads(), 512);
    EXPECT_EQ(machineProfile("epyc64").maxThreads(), 64);
}

TEST(MachineProfileLoader, Power10ModelsLlscSmt)
{
    // The POWER10 profile must stay an LL/SC machine wide enough for
    // 128-thread campaigns, with the reservation-loss retry penalty
    // dominating the single-op CAS retry cost (that asymmetry is what
    // the LL/SC-vs-AMO ablation measures).
    const MachineProfile& p10 = machineProfile("power10");
    EXPECT_TRUE(p10.llscMode);
    EXPECT_EQ(p10.topology.smtPerCore, 4);
    EXPECT_EQ(p10.maxThreads(), 128);
    EXPECT_GT(p10.llscRetryCycles, 4 * p10.casRetryCycles);
    // Round-trips through the emitter like every builtin (the parity
    // loop above covers it too once it is in the registry, but a
    // direct check keeps the failure message pointed at power10).
    MachineProfile reparsed;
    std::string error;
    ASSERT_TRUE(parseMachineProfile(machineProfileToJson(p10),
                                    "power10-roundtrip", reparsed,
                                    error))
        << error;
    EXPECT_EQ(reparsed.contentHash, p10.contentHash);
}

TEST(MachineProfileLoader, UnknownNameDiesWithCatalog)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH((void)machineProfile("no-such-machine"), "epyc64");
}

} // namespace
} // namespace splash
