// Bit-identical parity against the pre-refactor hardcoded machine
// profiles.  The goldens in parity_golden.inc were captured from the
// PR 8 tree (commit d9dc541), before MachineProfile grew topology and
// coherence-state cost tables; the data-driven epyc64/icelake64
// profiles must reproduce every simCycles and lineTransfers value
// exactly.  A mismatch here means the refactor changed cost semantics,
// not just representation.
#include <gtest/gtest.h>

#include <cstdint>

#include "engine/engine.h"
#include "harness/presets.h"
#include "harness/suite.h"

namespace splash {
namespace {

struct GoldenRow {
    const char* benchmark;
    const char* suite;
    const char* machine;
    int threads;
    std::uint64_t simCycles;
    std::uint64_t lineTransfers;
};

const GoldenRow kGolden[] = {
#include "parity_golden.inc"
};

SuiteVersion
suiteFromName(const std::string& name)
{
    return name == "splash3" ? SuiteVersion::Splash3
                             : SuiteVersion::Splash4;
}

TEST(MachineParity, GoldensAreComplete)
{
    // 12 benchmarks x 2 suites x 2 machines x 2 thread counts.
    EXPECT_EQ(std::size(kGolden), 96u);
}

class MachineParityRow
    : public ::testing::TestWithParam<GoldenRow>
{
};

TEST_P(MachineParityRow, BitIdentical)
{
    const GoldenRow& row = GetParam();
    RunConfig config;
    config.threads = row.threads;
    config.suite = suiteFromName(row.suite);
    config.engine = EngineKind::Sim;
    config.profile = row.machine;
    config.params = benchParams(row.benchmark, 0.1);
    const RunResult result = runBenchmark(row.benchmark, config);
    ASSERT_TRUE(result.verified) << result.verifyMessage;
    EXPECT_EQ(result.simCycles, row.simCycles);
    EXPECT_EQ(result.lineTransfers, row.lineTransfers);
}

std::string
rowName(const ::testing::TestParamInfo<GoldenRow>& info)
{
    std::string name = std::string(info.param.benchmark) + "_" +
                       info.param.suite + "_" + info.param.machine +
                       "_t" + std::to_string(info.param.threads);
    for (char& c : name)
        if (c == '-' || c == '.')
            c = '_';
    return name;
}

struct RegisterBenchmarks {
    RegisterBenchmarks() { registerAllBenchmarks(); }
} registerBenchmarksOnce;

INSTANTIATE_TEST_SUITE_P(Golden, MachineParityRow,
                         ::testing::ValuesIn(kGolden), rowName);

} // namespace
} // namespace splash
