#include <gtest/gtest.h>

#include "sim/line_model.h"

namespace splash {
namespace {

class LineModelTest : public ::testing::Test
{
  protected:
    const MachineProfile& prof_ = machineProfile("test4");
};

TEST_F(LineModelTest, FirstRmwPaysTransfer)
{
    SimLine line;
    const VTime done = line.rmw(0, 100, prof_);
    EXPECT_EQ(done, 100 + prof_.rmwRemoteCycles);
    EXPECT_EQ(line.transferCount(), 1u);
}

TEST_F(LineModelTest, RepeatedOwnerRmwIsLocal)
{
    SimLine line;
    VTime t = line.rmw(0, 0, prof_);
    const VTime t2 = line.rmw(0, t, prof_);
    EXPECT_EQ(t2 - t, prof_.rmwLocalCycles);
    EXPECT_EQ(line.transferCount(), 1u);
}

TEST_F(LineModelTest, ContendedRmwsSerialize)
{
    SimLine line;
    // Two threads arrive at the same instant; the second's RMW cannot
    // start before the first completes.
    const VTime first = line.rmw(0, 50, prof_);
    const VTime second = line.rmw(1, 50, prof_);
    EXPECT_GE(second, first + prof_.rmwRemoteCycles);
}

TEST_F(LineModelTest, SharerLoadIsLocal)
{
    SimLine line;
    const VTime miss = line.load(2, 10, prof_);
    EXPECT_EQ(miss, 10 + prof_.loadRemoteCycles);
    const VTime hit = line.load(2, miss, prof_);
    EXPECT_EQ(hit, miss + prof_.loadLocalCycles);
}

TEST_F(LineModelTest, RmwInvalidatesSharers)
{
    SimLine line;
    (void)line.load(1, 0, prof_);
    (void)line.rmw(0, 1000, prof_);
    // Thread 1 lost the line; its next load is a miss again.
    const VTime reload = line.load(1, 5000, prof_);
    EXPECT_EQ(reload, 5000 + prof_.loadRemoteCycles);
}

TEST_F(LineModelTest, OwnerRmwAfterForeignLoadPaysAgain)
{
    SimLine line;
    VTime t = line.rmw(0, 0, prof_);
    (void)line.load(1, t, prof_);
    // The line was demoted to shared; even the old owner pays the
    // upgrade on its next RMW.
    const VTime before = line.transferCount();
    (void)line.rmw(0, 10000, prof_);
    EXPECT_EQ(line.transferCount(), before + 1);
}

TEST(MachineProfiles, KnownNamesResolve)
{
    for (const auto& name : machineProfileNames())
        EXPECT_EQ(machineProfile(name).name, name);
    EXPECT_GE(machineProfileNames().size(), 3u);
}

TEST(MachineProfiles, EpycPricierThanIcelake)
{
    const auto& epyc = machineProfile("epyc64");
    const auto& ice = machineProfile("icelake64");
    EXPECT_GT(epyc.rmwRemoteCycles, ice.rmwRemoteCycles);
    EXPECT_GT(epyc.wakeLatencyCycles, ice.wakeLatencyCycles);
    EXPECT_GT(epyc.parkCycles, ice.parkCycles);
}

} // namespace
} // namespace splash
