#include <gtest/gtest.h>

#include "sim/line_model.h"

namespace splash {
namespace {

class LineModelTest : public ::testing::Test
{
  protected:
    const MachineProfile& prof_ = machineProfile("test4");

    VTime
    cost(AtomicOp op, CoherenceState state) const
    {
        return prof_.cost(op, state);
    }
};

TEST_F(LineModelTest, FirstRmwPaysMemoryFetch)
{
    SimLine line;
    const VTime done = line.rmw(0, 100, prof_, AtomicOp::Cas);
    EXPECT_EQ(done, 100 + cost(AtomicOp::Cas,
                               CoherenceState::InvalidRemote));
    EXPECT_EQ(line.transferCount(), 1u);
    EXPECT_EQ(line.transferCount(TransferScope::Memory), 1u);
}

TEST_F(LineModelTest, RepeatedOwnerRmwIsOwned)
{
    SimLine line;
    VTime t = line.rmw(0, 0, prof_, AtomicOp::Faa);
    const VTime t2 = line.rmw(0, t, prof_, AtomicOp::Faa);
    EXPECT_EQ(t2 - t, cost(AtomicOp::Faa, CoherenceState::Owned));
    EXPECT_EQ(line.transferCount(), 1u);
}

TEST_F(LineModelTest, ContendedRmwsSerialize)
{
    SimLine line;
    // Two threads arrive at the same instant; the second's RMW cannot
    // start before the first completes.
    const VTime first = line.rmw(0, 50, prof_, AtomicOp::Cas);
    const VTime second = line.rmw(1, 50, prof_, AtomicOp::Cas);
    EXPECT_GE(second, first + cost(AtomicOp::Cas,
                                   CoherenceState::InvalidLocal));
}

TEST_F(LineModelTest, SharerLoadIsLocal)
{
    SimLine line;
    const VTime miss = line.load(2, 10, prof_);
    EXPECT_EQ(miss, 10 + cost(AtomicOp::Load,
                              CoherenceState::InvalidRemote));
    const VTime hit = line.load(2, miss, prof_);
    EXPECT_EQ(hit, miss + cost(AtomicOp::Load,
                               CoherenceState::Shared));
}

TEST_F(LineModelTest, RmwInvalidatesSharers)
{
    SimLine line;
    (void)line.load(1, 0, prof_);
    (void)line.rmw(0, 1000, prof_, AtomicOp::Cas);
    // Thread 1 lost the line; its next load is a miss again.
    const VTime reload = line.load(1, 5000, prof_);
    EXPECT_EQ(reload, 5000 + cost(AtomicOp::Load,
                                  CoherenceState::InvalidLocal));
}

TEST_F(LineModelTest, OwnerRmwAfterForeignLoadPaysAgain)
{
    SimLine line;
    VTime t = line.rmw(0, 0, prof_, AtomicOp::Cas);
    (void)line.load(1, t, prof_);
    // The line was demoted to shared; even the old owner pays the
    // upgrade on its next RMW.
    const VTime before = line.transferCount();
    (void)line.rmw(0, 10000, prof_, AtomicOp::Cas);
    EXPECT_EQ(line.transferCount(), before + 1);
}

TEST_F(LineModelTest, SoleSharerUpgradeIsSameCoreScope)
{
    SimLine line;
    (void)line.load(3, 0, prof_);
    // tid 3 holds the only copy but not ownership; its RMW upgrades
    // in place (Shared price, no data motion beyond the invalidate).
    const VTime t = line.rmw(3, 1000, prof_, AtomicOp::Cas);
    EXPECT_EQ(t, 1000 + cost(AtomicOp::Cas, CoherenceState::Shared));
    EXPECT_EQ(line.transferCount(TransferScope::SameCore), 1u);
}

TEST(SharerSetTest, TracksThreadsBeyondSixtyFour)
{
    SharerSet set;
    // The old bitmask aliased tid & 63: tid 64 looked like tid 0.
    set.add(64);
    EXPECT_TRUE(set.contains(64));
    EXPECT_FALSE(set.contains(0));
    set.add(0);
    set.add(511);
    EXPECT_EQ(set.count(), 3);
    std::vector<int> seen;
    set.forEach([&](int tid) { seen.push_back(tid); });
    EXPECT_EQ(seen, (std::vector<int>{0, 64, 511}));
    EXPECT_FALSE(set.soleMember(64));
    set.assign(64);
    EXPECT_TRUE(set.soleMember(64));
    EXPECT_EQ(set.count(), 1);
}

TEST(LineModelBigMachine, HighTidsDoNotAliasLowTids)
{
    const MachineProfile& prof = machineProfile("t3-512");
    SimLine line;
    (void)line.rmw(0, 0, prof, AtomicOp::Cas);
    // Old model: bit(64) == bit(0), so tid 64 looked like the owner
    // and was charged the cheap owned price.  Now it must pay a
    // transfer.
    const std::uint64_t before = line.transferCount();
    (void)line.rmw(64, 100000, prof, AtomicOp::Cas);
    EXPECT_EQ(line.transferCount(), before + 1);
}

TEST(LineModelBigMachine, SmtSiblingSupplyIsCheap)
{
    const MachineProfile& prof = machineProfile("t3-512");
    ASSERT_EQ(prof.topology.smtPerCore, 8);
    ASSERT_GE(prof.topology.smtSiblingTransferCycles, 0);
    SimLine line;
    VTime t = line.rmw(0, 0, prof, AtomicOp::Cas);
    // tid 1 is an SMT sibling of tid 0 (same core): flat cheap price.
    const VTime done = line.rmw(1, t, prof, AtomicOp::Cas);
    EXPECT_EQ(done - t, static_cast<VTime>(
                            prof.topology.smtSiblingTransferCycles));
    EXPECT_EQ(line.transferCount(TransferScope::SameCore), 1u);
    // tid 8 is another core in the same domain: invalid-local price.
    const VTime far = line.rmw(8, done, prof, AtomicOp::Cas);
    EXPECT_EQ(far - done, prof.cost(AtomicOp::Cas,
                                    CoherenceState::InvalidLocal));
    EXPECT_EQ(line.transferCount(TransferScope::SameDomain), 1u);
}

TEST(LineModelBigMachine, CrossDomainAddsDistance)
{
    const MachineProfile& prof = machineProfile("t3-512");
    SimLine line;
    VTime t = line.rmw(0, 0, prof, AtomicOp::Cas); // domain 0
    // tid 384 lives in domain 3: base invalid-remote plus 3 hops.
    ASSERT_EQ(prof.topology.domainOf(384), 3);
    const VTime done = line.rmw(384, t, prof, AtomicOp::Cas);
    EXPECT_EQ(done - t,
              prof.cost(AtomicOp::Cas, CoherenceState::InvalidRemote) +
                  prof.topology.domainDistanceCycles[3]);
    EXPECT_EQ(line.transferCount(TransferScope::CrossDomain), 1u);
}

TEST(MachineProfiles, KnownNamesResolve)
{
    for (const auto& name : machineProfileNames())
        EXPECT_EQ(machineProfile(name).name, name);
    EXPECT_GE(machineProfileNames().size(), 5u);
}

TEST(MachineProfiles, EpycPricierThanIcelake)
{
    const auto& epyc = machineProfile("epyc64");
    const auto& ice = machineProfile("icelake64");
    EXPECT_GT(epyc.cost(AtomicOp::Cas, CoherenceState::InvalidLocal),
              ice.cost(AtomicOp::Cas, CoherenceState::InvalidLocal));
    EXPECT_GT(epyc.wakeLatencyCycles, ice.wakeLatencyCycles);
    EXPECT_GT(epyc.parkCycles, ice.parkCycles);
}

TEST(MachineProfiles, LlscRetryDistinctFromCas)
{
    const auto& sg = machineProfile("sg2044");
    EXPECT_TRUE(sg.llscMode);
    EXPECT_GT(sg.llscRetryCycles, sg.casRetryCycles);
    EXPECT_EQ(sg.retryCycles(AtomicOp::Cas), sg.llscRetryCycles);
    EXPECT_EQ(sg.retryCycles(AtomicOp::Faa), sg.casRetryCycles);
    const auto& epyc = machineProfile("epyc64");
    EXPECT_FALSE(epyc.llscMode);
    EXPECT_EQ(epyc.retryCycles(AtomicOp::Cas), epyc.casRetryCycles);
}

} // namespace
} // namespace splash
