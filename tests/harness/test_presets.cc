#include <gtest/gtest.h>

#include "core/benchmark.h"
#include "harness/presets.h"
#include "harness/suite.h"

namespace splash {
namespace {

class PresetTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { registerAllBenchmarks(); }
};

TEST_F(PresetTest, SuiteOrderCoversAllRegisteredBenchmarks)
{
    const auto names = benchmarkNames();
    EXPECT_EQ(names.size(), 12u);
    for (const auto& name : suiteOrder()) {
        EXPECT_TRUE(hasBenchmark(name)) << name;
    }
    EXPECT_EQ(suiteOrder().size(), names.size());
}

TEST_F(PresetTest, EveryPresetSetsUpCleanly)
{
    for (const auto& name : suiteOrder()) {
        for (const double scale : {0.1, 0.25, 1.0}) {
            auto bench = makeBenchmark(name);
            World world(64, SuiteVersion::Splash4);
            bench->setup(world, benchParams(name, scale));
            EXPECT_FALSE(bench->inputDescription().empty()) << name;
            EXPECT_GT(world.objects().size(), 0u) << name;
        }
    }
}

TEST_F(PresetTest, ScaleShrinksInputs)
{
    const Params full = benchParams("radix", 1.0);
    const Params quarter = benchParams("radix", 0.25);
    EXPECT_GT(full.getInt("keys", 0), quarter.getInt("keys", 0));
}

TEST_F(PresetTest, UnknownBenchmarkIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH((void)benchParams("nonesuch"), "no preset");
}

TEST_F(PresetTest, DescriptionsAreInformative)
{
    for (const auto& name : suiteOrder()) {
        auto bench = makeBenchmark(name);
        EXPECT_FALSE(bench->description().empty()) << name;
        EXPECT_EQ(bench->name(), name);
    }
}

} // namespace
} // namespace splash
