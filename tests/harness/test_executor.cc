/**
 * @file
 * Executor tests: the fork-isolated single-job layer.  Covers the
 * result wire codec (round trip, per-thread stats, malformed input),
 * the seeded retry loop, and — under fork isolation — clean-result
 * round trips, crash capture, Sync-Scope carriage, and native
 * watchdog exit-code decoding.  These assertions are carried over
 * from the pre-pipeline suite_runner tests, so the extraction
 * demonstrably preserved the watchdog/retry semantics.
 *
 * The Run-Guard section covers the hardened-execution layer: the
 * heartbeat protocol (slow-but-alive children survive, silent ones
 * classify Hung), SIGTERM -> SIGKILL escalation against wedged
 * children, per-job rlimits (OutOfMemory, CpuLimit), and the
 * wall-timeout signal classification.
 */

#include <gtest/gtest.h>

#include "core/sync_profile.h"
#include "harness/executor.h"
#include "planted_benchmarks.h"

namespace splash {
namespace {

using planted::ensurePlantedRegistered;
using planted::simConfig;

TEST(ExecutorWire, RoundTripsEveryField)
{
    RunResult result;
    result.status = RunStatus::Livelock;
    result.statusDetail = "detail with\nnewline; and ; semis";
    result.verified = true;
    result.verifyMessage = "msg=with equals\\and backslash";
    result.simCycles = 123456789;
    result.lineTransfers = 4242;
    result.wallSeconds = 0.25;
    result.totals.barrierCrossings = 8;
    result.totals.lockAcquires = 9;
    result.totals.ticketOps = 10;
    result.totals.sumOps = 11;
    result.totals.stackOps = 12;
    result.totals.flagOps = 13;
    result.totals.workUnits = 14;
    result.perThread.resize(2);
    result.perThread[0].workUnits = 7;
    result.perThread[0].barrierCrossings = 1;
    result.perThread[0].categoryCycles[static_cast<int>(
        TimeCategory::Compute)] = 77;
    result.perThread[1].workUnits = 9;
    result.perThread[1].categoryCycles[static_cast<int>(
        TimeCategory::Barrier)] = 99;

    RunResult decoded;
    ASSERT_TRUE(
        deserializeRunResult(serializeRunResult(result), decoded));
    EXPECT_EQ(decoded.status, RunStatus::Livelock);
    EXPECT_EQ(decoded.statusDetail, result.statusDetail);
    EXPECT_TRUE(decoded.verified);
    EXPECT_EQ(decoded.verifyMessage, result.verifyMessage);
    EXPECT_EQ(decoded.simCycles, result.simCycles);
    EXPECT_EQ(decoded.lineTransfers, result.lineTransfers);
    EXPECT_DOUBLE_EQ(decoded.wallSeconds, result.wallSeconds);
    EXPECT_EQ(decoded.totals.barrierCrossings, 8u);
    EXPECT_EQ(decoded.totals.workUnits, 14u);
    ASSERT_EQ(decoded.perThread.size(), 2u);
    EXPECT_EQ(decoded.perThread[0].workUnits, 7u);
    EXPECT_EQ(decoded.perThread[0].barrierCrossings, 1u);
    EXPECT_EQ(decoded.perThread[0].categoryCycles[static_cast<int>(
                  TimeCategory::Compute)],
              77u);
    EXPECT_EQ(decoded.perThread[1].workUnits, 9u);
    EXPECT_EQ(decoded.perThread[1].categoryCycles[static_cast<int>(
                  TimeCategory::Barrier)],
              99u);
}

TEST(ExecutorWire, RejectsPayloadWithoutStatus)
{
    RunResult decoded;
    EXPECT_FALSE(deserializeRunResult("", decoded));
    EXPECT_FALSE(deserializeRunResult("garbage\nno equals", decoded));
    EXPECT_FALSE(
        deserializeRunResult("simCycles=5\nverified=1\n", decoded));
}

TEST(ExecutorWire, ToleratesUnknownKeys)
{
    RunResult decoded;
    ASSERT_TRUE(deserializeRunResult(
        "status=0\nfutureKey=whatever\nverified=1\n", decoded));
    EXPECT_EQ(decoded.status, RunStatus::Ok);
    EXPECT_TRUE(decoded.verified);
}

TEST(Executor, VerifyFailureConsumesTheSeededRetry)
{
    ensurePlantedRegistered();
    IsolateOptions iso; // default: one seeded retry, in-process
    const RunResult result =
        runBenchmarkResilient("zz-verifyfail", simConfig(), iso);
    EXPECT_EQ(result.status, RunStatus::VerifyFailed);
    EXPECT_EQ(result.attempts, 2);
}

TEST(Executor, CleanRunTakesOneAttempt)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    const RunResult result =
        runBenchmarkResilient("zz-ok", simConfig(), iso);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.attempts, 1);
}

TEST(Executor, WatchdogClassifiesADeadlockInProcess)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.maxAttempts = 1;
    const RunResult result =
        runBenchmarkResilient("zz-deadlock", simConfig(), iso);
    EXPECT_EQ(result.status, RunStatus::Deadlock);
    EXPECT_FALSE(result.verified);
}

#if defined(__unix__) || defined(__APPLE__)

TEST(Executor, IsolationRoundTripsACleanResult)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    RunConfig config = simConfig();
    const RunResult result =
        runBenchmarkResilient("zz-ok", config, iso);
    EXPECT_EQ(result.status, RunStatus::Ok);
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.verifyMessage, "planted ok");
    // Stats survive the pipe: one barrier crossing per thread.
    EXPECT_EQ(result.totals.barrierCrossings,
              static_cast<std::uint64_t>(config.threads));
    EXPECT_GT(result.simCycles, 0u);
    // The per-thread breakdown crosses the wire too (Table V).
    ASSERT_EQ(result.perThread.size(),
              static_cast<std::size_t>(config.threads));
    EXPECT_EQ(result.perThread[0].barrierCrossings, 1u);
}

TEST(Executor, IsolatedResultMatchesInProcessResult)
{
    ensurePlantedRegistered();
    RunConfig config = simConfig();
    IsolateOptions inProcess;
    IsolateOptions isolated;
    isolated.enabled = true;
    const RunResult a =
        runBenchmarkResilient("zz-ok", config, inProcess);
    const RunResult b =
        runBenchmarkResilient("zz-ok", config, isolated);
    // The sim engine is deterministic, so isolation must be
    // observationally transparent for everything the report prints.
    EXPECT_EQ(a.simCycles, b.simCycles);
    EXPECT_EQ(a.lineTransfers, b.lineTransfers);
    EXPECT_EQ(a.totals.barrierCrossings, b.totals.barrierCrossings);
    EXPECT_EQ(a.totals.workUnits, b.totals.workUnits);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.verified, b.verified);
}

TEST(Executor, IsolationCapturesACrash)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.maxAttempts = 1;
    RunConfig config = simConfig();
    config.engine = EngineKind::Native;
    config.threads = 2;
    const RunResult result =
        runBenchmarkResilient("zz-crash", config, iso);
    EXPECT_EQ(result.status, RunStatus::Crash);
    EXPECT_NE(result.statusDetail.find("signal"), std::string::npos)
        << result.statusDetail;
}

TEST(Executor, IsolationCarriesTheSyncProfile)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    RunConfig config = simConfig();
    config.syncProfile = true;
    const RunResult result =
        runBenchmarkResilient("zz-ok", config, iso);
    ASSERT_EQ(result.status, RunStatus::Ok);
    ASSERT_TRUE(result.syncProfile);
    const SyncProfile& profile = *result.syncProfile;
    EXPECT_EQ(profile.threads, config.threads);
    EXPECT_EQ(profile.timeUnit, "cycles");
    // Counters survive the pipe: one barrier crossing per thread.
    std::uint64_t barrierOps = 0;
    for (const auto& c : profile.constructs)
        if (c.kind == SyncObjKind::Barrier)
            barrierOps += c.ops;
    EXPECT_EQ(barrierOps, static_cast<std::uint64_t>(config.threads));
    // The event timeline deliberately does not cross the process
    // boundary (see the wire codec's contract).
    EXPECT_TRUE(profile.events.empty());
}

TEST(Executor, IsolationDecodesTheNativeWatchdogExit)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.maxAttempts = 1;
    RunConfig config;
    config.threads = 2;
    config.engine = EngineKind::Native;
    config.suite = SuiteVersion::Splash4;
    config.watchdog.enabled = true;
    config.watchdog.maxWallSeconds = 1.0;
    const RunResult result =
        runBenchmarkResilient("zz-deadlock", config, iso);
    EXPECT_EQ(result.status, RunStatus::Deadlock);
    EXPECT_NE(result.statusDetail.find("watchdog"), std::string::npos)
        << result.statusDetail;
}

// ---------------------------------------------------------------- //
// Run-Guard: heartbeats, escalation, resource limits.               //
// ---------------------------------------------------------------- //

TEST(RunGuard, HeartbeatKeepsSlowChildAlive)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.heartbeatIntervalSeconds = 0.1;
    iso.heartbeatTimeoutSeconds = 0.4;
    RunConfig config = simConfig();
    config.params.set("sleepMs", std::int64_t{900});
    // The child is silent on the *benchmark* for > 2x the heartbeat
    // timeout, but the heartbeat thread proves it alive throughout.
    const RunResult result =
        runBenchmarkAttempt("zz-sleepy", config, iso);
    EXPECT_EQ(result.status, RunStatus::Ok);
    EXPECT_TRUE(result.verified);
}

TEST(RunGuard, SilentChildClassifiesHungViaSigterm)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.heartbeatIntervalSeconds = 0; // heartbeats off: total silence
    iso.heartbeatTimeoutSeconds = 0.4;
    iso.killGraceSeconds = 1.0;
    RunConfig config = simConfig();
    config.params.set("sleepMs", std::int64_t{5000});
    const RunResult result =
        runBenchmarkAttempt("zz-sleepy", config, iso);
    EXPECT_EQ(result.status, RunStatus::Hung);
    EXPECT_FALSE(result.verified);
    EXPECT_NE(result.statusDetail.find("no heartbeat"),
              std::string::npos)
        << result.statusDetail;
    // A sleeping child honors SIGTERM: no escalation needed.
    EXPECT_NE(result.statusDetail.find("terminated by SIGTERM"),
              std::string::npos)
        << result.statusDetail;
}

TEST(RunGuard, WedgedChildNeedsSigkillEscalation)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.heartbeatIntervalSeconds = 0.05;
    iso.heartbeatTimeoutSeconds = 0.3;
    iso.killGraceSeconds = 0.2;
    iso.harnessChaos.enabled = true;
    iso.harnessChaos.seed = 1;
    iso.harnessChaos.wedgeChildProb = 1.0; // every draw wedges
    const RunResult result =
        runBenchmarkAttempt("zz-ok", simConfig(), iso, "wedge-job", 1);
    EXPECT_EQ(result.status, RunStatus::Hung);
    EXPECT_NE(result.statusDetail.find("escalated to SIGKILL"),
              std::string::npos)
        << result.statusDetail;
}

TEST(RunGuard, ChaosKillClassifiesAsCrash)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.harnessChaos.enabled = true;
    iso.harnessChaos.seed = 1;
    iso.harnessChaos.killChildProb = 1.0;
    const RunResult result =
        runBenchmarkAttempt("zz-ok", simConfig(), iso, "kill-job", 1);
    EXPECT_EQ(result.status, RunStatus::Crash);
    EXPECT_NE(result.statusDetail.find("signal 9"), std::string::npos)
        << result.statusDetail;
}

TEST(RunGuard, AddressSpaceLimitClassifiesOutOfMemory)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.limits.maxAddressSpaceMb = 256;
    RunConfig config = simConfig();
    config.params.set("mb", std::int64_t{1024}); // 4x the ceiling
    const RunResult result =
        runBenchmarkAttempt("zz-hog", config, iso);
    EXPECT_EQ(result.status, RunStatus::OutOfMemory);
    EXPECT_NE(result.statusDetail.find("RLIMIT_AS"), std::string::npos)
        << result.statusDetail;
}

TEST(RunGuard, UnderTheLimitTheHogCompletes)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.limits.maxAddressSpaceMb = 2048;
    RunConfig config = simConfig();
    config.params.set("mb", std::int64_t{16});
    const RunResult result =
        runBenchmarkAttempt("zz-hog", config, iso);
    EXPECT_EQ(result.status, RunStatus::Ok);
    EXPECT_TRUE(result.verified);
}

TEST(RunGuard, CpuLimitClassifiesViaSigxcpu)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.limits.maxCpuSeconds = 1; // kernel minimum granularity
    const RunResult result =
        runBenchmarkAttempt("zz-spin", simConfig(), iso);
    EXPECT_EQ(result.status, RunStatus::CpuLimit);
    EXPECT_NE(result.statusDetail.find("SIGXCPU"), std::string::npos)
        << result.statusDetail;
}

TEST(RunGuard, WallTimeoutReportsSigtermClassification)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.timeoutSeconds = 0.5;
    RunConfig config = simConfig();
    config.params.set("sleepMs", std::int64_t{5000});
    const RunResult result =
        runBenchmarkAttempt("zz-sleepy", config, iso);
    EXPECT_EQ(result.status, RunStatus::Timeout);
    EXPECT_NE(result.statusDetail.find("wall limit"),
              std::string::npos)
        << result.statusDetail;
    EXPECT_NE(result.statusDetail.find("terminated by SIGTERM"),
              std::string::npos)
        << result.statusDetail;
}

#endif // fork isolation

} // namespace
} // namespace splash
