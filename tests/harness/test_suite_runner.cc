/**
 * @file
 * Crash-isolated suite runs: planted deadlocking, verify-failing, and
 * crashing benchmarks must become per-benchmark failure rows while the
 * rest of the suite completes, and the aggregate exit code must go
 * nonzero.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/benchmark.h"
#include "core/sync_profile.h"
#include "engine/engine.h"
#include "harness/suite_runner.h"

namespace splash {
namespace {

/** Boilerplate base for the planted fixtures. */
class PlantedBenchmark : public Benchmark
{
  public:
    std::string
    description() const override
    {
        return "planted suite-runner fixture";
    }
    std::string inputDescription() const override { return "none"; }
    bool
    verify(std::string& message) override
    {
        message = "planted ok";
        return true;
    }
};

/** Completes and verifies. */
class OkBenchmark : public PlantedBenchmark
{
  public:
    std::string name() const override { return "zz-ok"; }
    void
    setup(World& world, const Params&) override
    {
        bar_ = world.createBarrier();
    }
    void
    run(Context& ctx) override
    {
        ctx.work(10);
        ctx.barrier(bar_);
    }

  private:
    BarrierHandle bar_;
};

/** Completes but fails its self-check. */
class VerifyFailBenchmark : public OkBenchmark
{
  public:
    std::string name() const override { return "zz-verifyfail"; }
    bool
    verify(std::string& message) override
    {
        message = "planted verification failure";
        return false;
    }
};

/** Thread 0 keeps the lock forever; everyone else blocks on it. */
class DeadlockBenchmark : public PlantedBenchmark
{
  public:
    std::string name() const override { return "zz-deadlock"; }
    void
    setup(World& world, const Params&) override
    {
        lock_ = world.createLock();
    }
    void
    run(Context& ctx) override
    {
        if (ctx.tid() == 0) {
            ctx.lockAcquire(lock_);
        } else {
            ctx.work(100);
            ctx.lockAcquire(lock_);
        }
    }

  private:
    LockHandle lock_;
};

/** Aborts the process mid-run (only sane under fork isolation). */
class CrashBenchmark : public PlantedBenchmark
{
  public:
    std::string name() const override { return "zz-crash"; }
    void
    setup(World& world, const Params&) override
    {
        bar_ = world.createBarrier();
    }
    void
    run(Context& ctx) override
    {
        ctx.barrier(bar_);
        if (ctx.tid() == 0)
            std::abort();
        ctx.barrier(bar_);
    }

  private:
    BarrierHandle bar_;
};

void
ensurePlantedRegistered()
{
    static const bool done = [] {
        registerBenchmark("zz-ok",
                          [] { return std::make_unique<OkBenchmark>(); });
        registerBenchmark("zz-verifyfail", [] {
            return std::make_unique<VerifyFailBenchmark>();
        });
        registerBenchmark("zz-deadlock", [] {
            return std::make_unique<DeadlockBenchmark>();
        });
        registerBenchmark("zz-crash", [] {
            return std::make_unique<CrashBenchmark>();
        });
        return true;
    }();
    (void)done;
}

RunConfig
simConfig()
{
    RunConfig config;
    config.threads = 4;
    config.engine = EngineKind::Sim;
    config.suite = SuiteVersion::Splash4;
    config.profile = "test4";
    config.watchdog.enabled = true;
    return config;
}

TEST(SuiteRunner, DeadlockRowDoesNotStopTheSuite)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.maxAttempts = 1;
    const auto rows =
        runSuite({"zz-deadlock", "zz-ok"}, simConfig(), iso);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].result.status, RunStatus::Deadlock);
    EXPECT_FALSE(rows[0].result.verified);
    EXPECT_EQ(rows[1].result.status, RunStatus::Ok);
    EXPECT_TRUE(rows[1].result.verified);
    EXPECT_EQ(suiteExitCode(rows), 1);
}

TEST(SuiteRunner, VerifyFailureFailsTheSuiteAfterRetry)
{
    ensurePlantedRegistered();
    IsolateOptions iso; // default: one seeded retry
    const auto rows = runSuite({"zz-verifyfail"}, simConfig(), iso);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].result.status, RunStatus::VerifyFailed);
    EXPECT_EQ(rows[0].result.attempts, 2);
    EXPECT_EQ(suiteExitCode(rows), 1);
}

TEST(SuiteRunner, AllOkRowsExitZero)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    const auto rows = runSuite({"zz-ok"}, simConfig(), iso);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_TRUE(rows[0].result.ok());
    EXPECT_EQ(rows[0].result.attempts, 1);
    EXPECT_EQ(suiteExitCode(rows), 0);
}

#if defined(__unix__) || defined(__APPLE__)

TEST(SuiteRunner, IsolationRoundTripsACleanResult)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    RunConfig config = simConfig();
    const RunResult result =
        runBenchmarkResilient("zz-ok", config, iso);
    EXPECT_EQ(result.status, RunStatus::Ok);
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.verifyMessage, "planted ok");
    // Stats survive the pipe: one barrier crossing per thread.
    EXPECT_EQ(result.totals.barrierCrossings,
              static_cast<std::uint64_t>(config.threads));
    EXPECT_GT(result.simCycles, 0u);
}

TEST(SuiteRunner, IsolationCapturesACrashAndMovesOn)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.maxAttempts = 1;
    RunConfig config = simConfig();
    config.engine = EngineKind::Native;
    config.threads = 2;
    const auto rows = runSuite({"zz-crash", "zz-ok"}, config, iso);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].result.status, RunStatus::Crash);
    EXPECT_NE(rows[0].result.statusDetail.find("signal"),
              std::string::npos)
        << rows[0].result.statusDetail;
    EXPECT_EQ(rows[1].result.status, RunStatus::Ok);
    EXPECT_EQ(suiteExitCode(rows), 1);
}

TEST(SuiteRunner, IsolationCarriesTheSyncProfile)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    RunConfig config = simConfig();
    config.syncProfile = true;
    const RunResult result =
        runBenchmarkResilient("zz-ok", config, iso);
    ASSERT_EQ(result.status, RunStatus::Ok);
    ASSERT_TRUE(result.syncProfile);
    const SyncProfile& profile = *result.syncProfile;
    EXPECT_EQ(profile.threads, config.threads);
    EXPECT_EQ(profile.timeUnit, "cycles");
    // Counters survive the pipe: one barrier crossing per thread.
    std::uint64_t barrierOps = 0;
    for (const auto& c : profile.constructs)
        if (c.kind == SyncObjKind::Barrier)
            barrierOps += c.ops;
    EXPECT_EQ(barrierOps, static_cast<std::uint64_t>(config.threads));
    // The event timeline deliberately does not cross the process
    // boundary (see the wire codec's contract).
    EXPECT_TRUE(profile.events.empty());
}

TEST(SuiteRunner, IsolationDecodesTheNativeWatchdogExit)
{
    ensurePlantedRegistered();
    IsolateOptions iso;
    iso.enabled = true;
    iso.maxAttempts = 1;
    RunConfig config;
    config.threads = 2;
    config.engine = EngineKind::Native;
    config.suite = SuiteVersion::Splash4;
    config.watchdog.enabled = true;
    config.watchdog.maxWallSeconds = 1.0;
    const RunResult result =
        runBenchmarkResilient("zz-deadlock", config, iso);
    EXPECT_EQ(result.status, RunStatus::Deadlock);
    EXPECT_NE(result.statusDetail.find("watchdog"), std::string::npos)
        << result.statusDetail;
}

#endif // fork isolation

} // namespace
} // namespace splash
