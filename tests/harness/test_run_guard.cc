/**
 * @file
 * Run-Guard scheduler tests: the hardened-campaign layer on top of
 * the executor.  Covers the deterministic chaos draw itself, the
 * retry engine's determinism across worker counts (--jobs=1 and
 * --jobs=4 must inject the same faults into the same jobs and
 * produce identical outcomes), convergence of a chaos campaign to
 * fault-free results, quarantine of repeat-offender benchmarks (and
 * its re-derivation on resume), the campaign failure budget, and the
 * CampaignSummary counters feeding the Run-Guard report section.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/chaos.h"
#include "harness/scheduler.h"
#include "planted_benchmarks.h"

namespace splash {
namespace {

using planted::ensurePlantedRegistered;
using planted::simConfig;

TEST(DeterministicDraw, IsPureAndWellDistributed)
{
    const double a = deterministicDraw(42, "kill", "job-a", 1);
    EXPECT_EQ(a, deterministicDraw(42, "kill", "job-a", 1));
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 1.0);
    // Every key component perturbs the draw.
    EXPECT_NE(a, deterministicDraw(43, "kill", "job-a", 1));
    EXPECT_NE(a, deterministicDraw(42, "wedge", "job-a", 1));
    EXPECT_NE(a, deterministicDraw(42, "kill", "job-b", 1));
    EXPECT_NE(a, deterministicDraw(42, "kill", "job-a", 2));
    // Segments must not concatenate ambiguously: ("ab","c") != ("a","bc").
    EXPECT_NE(deterministicDraw(0, "x", "ab", 1),
              deterministicDraw(0, "xa", "b", 1));
}

TEST(HarnessChaos, PresetsScaleAndValidate)
{
    const HarnessChaosOptions mild = harnessChaosPreset(1, 7);
    const HarnessChaosOptions storm = harnessChaosPreset(3, 7);
    EXPECT_TRUE(mild.enabled);
    EXPECT_EQ(mild.seed, 7u);
    EXPECT_GT(storm.killChildProb, mild.killChildProb);
    EXPECT_GT(storm.tearStoreProb, mild.tearStoreProb);
    EXPECT_FALSE(harnessChaosPreset(0, 7).enabled);
}

TEST(PlanExitCode, FailureBudgetGatesTheExitCode)
{
    // Fabricated campaign: 8 ok, 2 terminal failures.
    std::vector<JobOutcome> outcomes(10);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        outcomes[i].done = true;
        outcomes[i].result.status =
            i < 2 ? RunStatus::Crash : RunStatus::Ok;
        outcomes[i].result.verified = i >= 2;
    }
    EXPECT_EQ(planExitCode(outcomes), 1);          // historical default
    EXPECT_EQ(planExitCode(outcomes, 0.19), 1);    // over budget
    EXPECT_EQ(planExitCode(outcomes, 0.20), 0);    // within budget
    EXPECT_EQ(planExitCode(outcomes, 1.0), 0);
    // No failures: exit 0 regardless of budget.
    for (auto& outcome : outcomes) {
        outcome.result.status = RunStatus::Ok;
        outcome.result.verified = true;
    }
    EXPECT_EQ(planExitCode(outcomes, 0.0), 0);
}

TEST(CampaignSummary, CountsRetriesRecoveriesAndQuarantine)
{
    std::vector<JobOutcome> outcomes(4);
    // Recovered: failed twice, then Ok.
    outcomes[0].result.status = RunStatus::Ok;
    outcomes[0].result.verified = true;
    outcomes[0].result.attempts = 3;
    // Terminal failure after one retry.
    outcomes[1].result.status = RunStatus::Crash;
    outcomes[1].result.attempts = 2;
    // Quarantined (skipped, zero attempts).
    outcomes[2].result.status = RunStatus::Quarantined;
    outcomes[2].result.attempts = 0;
    // Resumed clean run.
    outcomes[3].result.status = RunStatus::Ok;
    outcomes[3].result.verified = true;
    outcomes[3].result.attempts = 1;
    outcomes[3].resumed = true;

    const CampaignSummary s = summarizeCampaign(outcomes);
    EXPECT_EQ(s.total, 4);
    EXPECT_EQ(s.ok, 2);
    EXPECT_EQ(s.failed, 1);
    EXPECT_EQ(s.quarantined, 1);
    EXPECT_EQ(s.retries, 3); // 2 from the recovery + 1 from the failure
    EXPECT_EQ(s.recovered, 1);
    EXPECT_EQ(s.resumed, 1);
    EXPECT_DOUBLE_EQ(s.failRate(), 0.5);
}

TEST(RunGuardScheduler, QuarantineSkipsRepeatOffenders)
{
    ensurePlantedRegistered();
    RunPlan plan;
    RunConfig config = simConfig();
    for (int rep = 0; rep < 3; ++rep) {
        config.params.set("rep", static_cast<std::int64_t>(rep));
        plan.add("zz-deadlock", config);
    }
    config.params.set("rep", std::int64_t{0});
    plan.add("zz-ok", config);

    SchedulerOptions options;
    options.retry.maxRetries = 0;
    options.retry.quarantineAfter = 2;
    const auto outcomes = runPlan(plan, options);
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_EQ(outcomes[0].result.status, RunStatus::Deadlock);
    EXPECT_EQ(outcomes[1].result.status, RunStatus::Deadlock);
    // The third repeat offender is skipped, not run.
    EXPECT_EQ(outcomes[2].result.status, RunStatus::Quarantined);
    EXPECT_EQ(outcomes[2].result.attempts, 0);
    EXPECT_EQ(outcomes[2].result.verifyMessage,
              "skipped: benchmark quarantined");
    // Other benchmarks are unaffected.
    EXPECT_EQ(outcomes[3].result.status, RunStatus::Ok);
    const CampaignSummary s = summarizeCampaign(outcomes);
    EXPECT_EQ(s.failed, 2);
    EXPECT_EQ(s.quarantined, 1);
}

#if defined(__unix__) || defined(__APPLE__)

std::string
tempStorePath(const char* tag)
{
    std::string path = ::testing::TempDir();
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "splash4-runguard-" + std::string(tag) + "-" +
            std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());
    return path;
}

/** Six distinct zz-work jobs (distinct content-derived ids). */
RunPlan
workPlan()
{
    RunPlan plan;
    RunConfig config = simConfig();
    for (int units : {10, 20, 30, 40, 50, 60}) {
        config.params.set("units", static_cast<std::int64_t>(units));
        plan.add("zz-work", config);
    }
    return plan;
}

/**
 * Kill-only chaos with a seed chosen so at least one job dies on its
 * first attempt and every job survives some attempt within the retry
 * budget.  The scan is deterministic, so every test run picks the
 * same seed.
 */
HarnessChaosOptions
killChaosFor(const RunPlan& plan, int maxAttempts)
{
    HarnessChaosOptions chaos;
    chaos.enabled = true;
    chaos.killChildProb = 0.4;
    for (chaos.seed = 1;; ++chaos.seed) {
        bool sawKill = false;
        bool allRecover = true;
        for (std::size_t i = 0; i < plan.size(); ++i) {
            const std::string& jobId = plan.job(i).jobId;
            int survivingAttempt = 0;
            for (int a = 1; a <= maxAttempts; ++a) {
                if (!chaos.drawKill(jobId, a)) {
                    survivingAttempt = a;
                    break;
                }
            }
            if (survivingAttempt == 0)
                allRecover = false;
            if (survivingAttempt != 1)
                sawKill = true;
        }
        if (sawKill && allRecover)
            return chaos;
        if (chaos.seed > 10000) {
            ADD_FAILURE() << "no suitable chaos seed in 10k tries";
            return chaos;
        }
    }
}

TEST(RunGuardScheduler, ChaosOutcomesAreIdenticalAcrossWorkerCounts)
{
    ensurePlantedRegistered();
    const RunPlan plan = workPlan();
    SchedulerOptions options;
    options.isolate.enabled = true;
    options.retry.maxRetries = 3;
    options.retry.backoffBaseSeconds = 0; // keep the test fast
    options.isolate.harnessChaos = killChaosFor(plan, 4);

    SchedulerOptions serial = options;
    SchedulerOptions parallel = options;
    parallel.jobs = 4;
    const auto a = runPlan(plan, serial);
    const auto b = runPlan(plan, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].job.jobId, b[i].job.jobId);
        EXPECT_EQ(a[i].result.status, b[i].result.status) << i;
        // Chaos draws are keyed by (jobId, attempt), never by worker
        // count or dispatch order — so even the retry counts match.
        EXPECT_EQ(a[i].result.attempts, b[i].result.attempts) << i;
        EXPECT_EQ(a[i].result.simCycles, b[i].result.simCycles) << i;
        EXPECT_EQ(a[i].result.totals.workUnits,
                  b[i].result.totals.workUnits)
            << i;
    }
    const CampaignSummary sa = summarizeCampaign(a);
    const CampaignSummary sb = summarizeCampaign(b);
    EXPECT_EQ(sa.retries, sb.retries);
    EXPECT_GT(sa.retries, 0); // the chaos seed guarantees a casualty
    EXPECT_EQ(sa.recovered, sb.recovered);
}

TEST(RunGuardScheduler, ChaosCampaignConvergesToFaultFreeResults)
{
    ensurePlantedRegistered();
    const RunPlan plan = workPlan();

    SchedulerOptions faultFree;
    faultFree.isolate.enabled = true;
    const auto baseline = runPlan(plan, faultFree);

    SchedulerOptions chaotic = faultFree;
    chaotic.retry.maxRetries = 3;
    chaotic.retry.backoffBaseSeconds = 0;
    chaotic.isolate.harnessChaos = killChaosFor(plan, 4);
    const auto survived = runPlan(plan, chaotic);

    ASSERT_EQ(baseline.size(), survived.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        // Retries recover every casualty, and recovered runs are
        // bit-identical to never-harmed ones (deterministic engine;
        // harness faults never leak into workload results).
        EXPECT_EQ(survived[i].result.status, RunStatus::Ok) << i;
        EXPECT_EQ(survived[i].result.simCycles,
                  baseline[i].result.simCycles)
            << i;
        EXPECT_EQ(survived[i].result.totals.workUnits,
                  baseline[i].result.totals.workUnits)
            << i;
    }
}

TEST(RunGuardScheduler, QuarantineIsRederivedOnResume)
{
    ensurePlantedRegistered();
    RunPlan plan;
    RunConfig config = simConfig();
    for (int rep = 0; rep < 3; ++rep) {
        config.params.set("rep", static_cast<std::int64_t>(rep));
        plan.add("zz-deadlock", config);
    }
    config.params.set("rep", std::int64_t{0});
    plan.add("zz-ok", config);

    SchedulerOptions options;
    options.retry.maxRetries = 0;
    options.retry.quarantineAfter = 2;

    const std::string path = tempStorePath("quarantine");
    std::vector<RunStatus> first;
    {
        ResultStore store(path);
        const auto outcomes = runPlan(plan, options, &store);
        for (const auto& outcome : outcomes)
            first.push_back(outcome.result.status);
        // Quarantined rows are not persisted: the store holds only
        // what actually ran.
        EXPECT_EQ(store.size(), 3u);
    }
    {
        ResultStore store(path);
        EXPECT_EQ(store.load(), 3u);
        const auto outcomes = runPlan(plan, options, &store);
        ASSERT_EQ(outcomes.size(), first.size());
        for (std::size_t i = 0; i < outcomes.size(); ++i)
            EXPECT_EQ(outcomes[i].result.status, first[i]) << i;
        // The ran jobs replayed; the quarantine was re-derived from
        // their stored failures without running anything new.
        EXPECT_TRUE(outcomes[0].resumed);
        EXPECT_TRUE(outcomes[1].resumed);
        EXPECT_FALSE(outcomes[2].resumed);
        EXPECT_EQ(outcomes[2].result.status, RunStatus::Quarantined);
    }
    std::remove(path.c_str());
}

TEST(RunGuardScheduler, IntentsMarkDiedMidRunJobs)
{
    ensurePlantedRegistered();
    const RunPlan plan = workPlan();
    const std::string path = tempStorePath("intents");

    SchedulerOptions options;
    options.isolate.enabled = true;
    {
        ResultStore store(path);
        runPlan(plan, options, &store);
    }
    {
        // Simulate a campaign killed mid-job: drop the last result
        // record but keep every intent, then resume.
        ResultStore full(path);
        ASSERT_EQ(full.load(), plan.size());
        const std::string lastId = plan.job(plan.size() - 1).jobId;
        EXPECT_FALSE(full.diedMidRun(lastId));
    }
    // Rewrite the store without the last job's result line.
    {
        std::ifstream in(path, std::ios::binary);
        std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
        in.close();
        const std::string lastId = plan.job(plan.size() - 1).jobId;
        std::string kept;
        std::size_t lineStart = 0;
        while (lineStart < content.size()) {
            std::size_t newline = content.find('\n', lineStart);
            if (newline == std::string::npos)
                newline = content.size() - 1;
            const std::string line =
                content.substr(lineStart, newline - lineStart);
            lineStart = newline + 1;
            if (line.find("\"type\":\"result\"") != std::string::npos &&
                line.find(lastId) != std::string::npos)
                continue;
            kept += line + "\n";
        }
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << kept;
    }
    ResultStore store(path);
    EXPECT_EQ(store.load(), plan.size() - 1);
    EXPECT_TRUE(store.diedMidRun(plan.job(plan.size() - 1).jobId));
    const auto outcomes = runPlan(plan, options, &store);
    ASSERT_EQ(outcomes.size(), plan.size());
    EXPECT_FALSE(outcomes[plan.size() - 1].resumed);
    EXPECT_EQ(outcomes[plan.size() - 1].result.status, RunStatus::Ok);
    std::remove(path.c_str());
}

#endif // fork isolation

} // namespace
} // namespace splash
