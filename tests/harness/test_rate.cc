/**
 * @file
 * Rate-mode pipeline tests (docs/THROUGHPUT.md): iteration seed
 * policy, job-id coverage of the rate parameters (with single-shot
 * ids unchanged), single-shot parity of a one-iteration campaign,
 * determinism of iteration streams across --jobs, resume-from-
 * iteration-records continuation, and the v3 store record formats
 * (with v2 lines still readable).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/run_plan.h"
#include "harness/result_store.h"
#include "harness/scheduler.h"
#include "planted_benchmarks.h"

namespace splash {
namespace {

using planted::ensurePlantedRegistered;
using planted::simConfig;

RunConfig
rateConfig(int iterations)
{
    RunConfig config = simConfig();
    config.mode = RunMode::Rate;
    config.rate.iterations = iterations;
    return config;
}

TEST(RateSeeds, IterationZeroIsTheJobSeed)
{
    EXPECT_EQ(deriveIterationSeed(1234, 0), 1234u);
    const std::uint64_t one = deriveIterationSeed(1234, 1);
    EXPECT_NE(one, 1234u);
    EXPECT_EQ(one, deriveSeed(1234, "iter/1"));
    EXPECT_NE(deriveIterationSeed(1234, 2), one);
    // A pure function of (job seed, iteration) — stable across calls.
    EXPECT_EQ(deriveIterationSeed(1234, 7), deriveIterationSeed(1234, 7));
}

TEST(RateJobIds, SingleShotIdsIgnoreRateFields)
{
    ensurePlantedRegistered();
    // A Single-mode job's id must be byte-identical to what it was
    // before the mode existed, even if rate fields are (meaninglessly)
    // populated — pre-rate stores must stay resumable.
    RunConfig plain = simConfig();
    RunConfig decorated = simConfig();
    decorated.rate.iterations = 9;
    decorated.rate.seconds = 3.5;
    decorated.rate.lambda = 100;
    EXPECT_EQ(computeJobId("zz-work", plain, 0),
              computeJobId("zz-work", decorated, 0));
}

TEST(RateJobIds, RateParametersAreCovered)
{
    ensurePlantedRegistered();
    const std::string single = computeJobId("zz-work", simConfig(), 0);
    const std::string rate4 =
        computeJobId("zz-work", rateConfig(4), 0);
    const std::string rate8 =
        computeJobId("zz-work", rateConfig(8), 0);
    EXPECT_NE(single, rate4);
    EXPECT_NE(rate4, rate8);
    RunConfig open = rateConfig(4);
    open.rate.arrival = ArrivalKind::Open;
    open.rate.lambda = 50;
    const std::string openId = computeJobId("zz-work", open, 0);
    EXPECT_NE(openId, rate4);
    open.rate.lambda = 100;
    EXPECT_NE(computeJobId("zz-work", open, 0), openId);
}

TEST(RateRun, OneIterationMatchesSingleShot)
{
    ensurePlantedRegistered();
    const RunResult single = runBenchmark("zz-work", simConfig());
    ASSERT_EQ(single.status, RunStatus::Ok);

    const RunResult rate = runBenchmark("zz-work", rateConfig(1));
    ASSERT_EQ(rate.status, RunStatus::Ok);
    ASSERT_EQ(rate.iterations.size(), 1u);
    // Iteration 0 consumes the job seed itself, so a one-iteration
    // campaign is the single-shot run: same virtual makespan.
    EXPECT_EQ(rate.iterations[0].completionCycles, single.simCycles);
    EXPECT_EQ(rate.simCycles, single.simCycles);
    EXPECT_TRUE(rate.verified);
}

TEST(RateRun, IterationsChainOnTheCampaignClock)
{
    ensurePlantedRegistered();
    const RunResult result = runBenchmark("zz-work", rateConfig(5));
    ASSERT_EQ(result.status, RunStatus::Ok);
    ASSERT_EQ(result.iterations.size(), 5u);
    VTime clock = 0;
    for (int i = 0; i < 5; ++i) {
        const IterationSample& sample = result.iterations[i];
        EXPECT_EQ(sample.iteration, i);
        EXPECT_EQ(sample.arrivalCycles, clock);
        EXPECT_EQ(sample.startCycles, clock);
        EXPECT_GT(sample.completionCycles, sample.startCycles);
        EXPECT_TRUE(sample.verified);
        clock = sample.completionCycles;
    }
    EXPECT_EQ(result.simCycles, clock);
}

TEST(RateRun, SecondsBudgetRunsAtLeastOneIteration)
{
    ensurePlantedRegistered();
    RunConfig config = simConfig();
    config.mode = RunMode::Rate;
    // A virtually-instant budget: the loop must still complete the
    // first iteration (elapsed is checked before each start).
    config.rate.seconds = 1e-9;
    const RunResult result = runBenchmark("zz-work", config);
    ASSERT_EQ(result.status, RunStatus::Ok);
    EXPECT_GE(result.iterations.size(), 1u);
}

TEST(RateRun, OpenArrivalsPinInjectionInstants)
{
    ensurePlantedRegistered();
    RunConfig config = rateConfig(4);
    config.rate.arrival = ArrivalKind::Open;
    config.rate.lambda = 1000.0; // 1e6 cycles apart at 1 GHz
    const RunResult result = runBenchmark("zz-work", config);
    ASSERT_EQ(result.status, RunStatus::Ok);
    ASSERT_EQ(result.iterations.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        const IterationSample& sample = result.iterations[i];
        EXPECT_EQ(sample.arrivalCycles,
                  static_cast<VTime>(i) * 1000000u);
        EXPECT_GE(sample.startCycles, sample.arrivalCycles);
    }
}

TEST(RateRun, ResumeContinuesTheExactStream)
{
    ensurePlantedRegistered();
    const RunResult full = runBenchmark("zz-work", rateConfig(5));
    ASSERT_EQ(full.iterations.size(), 5u);

    // Replay the first two iterations as "already persisted": the
    // resumed campaign must regenerate iterations 2..4 bit-identically
    // and return the full five-sample stream.
    std::vector<IterationSample> completed(full.iterations.begin(),
                                           full.iterations.begin() + 2);
    RunHooks hooks;
    hooks.completed = &completed;
    std::vector<int> streamed;
    hooks.onIteration = [&streamed](const IterationSample& sample) {
        streamed.push_back(sample.iteration);
    };
    const RunResult resumed =
        runBenchmark("zz-work", rateConfig(5), hooks);
    ASSERT_EQ(resumed.status, RunStatus::Ok);
    ASSERT_EQ(resumed.iterations.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(resumed.iterations[i].iteration, i);
        EXPECT_EQ(resumed.iterations[i].completionCycles,
                  full.iterations[i].completionCycles)
            << "iteration " << i;
    }
    // Only the locally re-run iterations stream through the hook.
    EXPECT_EQ(streamed, (std::vector<int>{2, 3, 4}));
}

TEST(RateScheduler, StreamsAreIdenticalAcrossJobs)
{
    ensurePlantedRegistered();
    const auto buildPlan = [] {
        RunPlan plan;
        for (int rep = 0; rep < 3; ++rep)
            plan.add("zz-work", rateConfig(3), rep);
        plan.add("zz-ok", rateConfig(3));
        return plan;
    };
    SchedulerOptions serial;
    serial.jobs = 1;
    SchedulerOptions parallel;
    parallel.jobs = 4; // forces fork isolation: the wire codec carries
                       // the iteration stream back across the fork
    const auto a = runPlan(buildPlan(), serial);
    const auto b = runPlan(buildPlan(), parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
        ASSERT_EQ(a[j].result.iterations.size(), 3u) << "job " << j;
        ASSERT_EQ(b[j].result.iterations.size(), 3u) << "job " << j;
        for (int i = 0; i < 3; ++i) {
            EXPECT_EQ(a[j].result.iterations[i].completionCycles,
                      b[j].result.iterations[i].completionCycles)
                << "job " << j << " iteration " << i;
        }
        EXPECT_EQ(a[j].result.simCycles, b[j].result.simCycles);
    }
}

TEST(RateStore, IterationRecordsRoundTrip)
{
    IterationSample sample;
    sample.iteration = 3;
    sample.arrivalCycles = 1000;
    sample.startCycles = 1100;
    sample.completionCycles = 2250;
    sample.arrivalSeconds = 0.25;
    sample.startSeconds = 0.251;
    sample.completionSeconds = 0.375;
    sample.verified = true;
    const std::string line =
        toIterationJsonLine("00112233deadbeef", "fft", sample);
    std::string jobId;
    IterationSample parsed;
    ASSERT_TRUE(parseIterationLine(line, jobId, parsed));
    EXPECT_EQ(jobId, "00112233deadbeef");
    EXPECT_EQ(parsed.iteration, 3);
    EXPECT_EQ(parsed.arrivalCycles, 1000u);
    EXPECT_EQ(parsed.startCycles, 1100u);
    EXPECT_EQ(parsed.completionCycles, 2250u);
    EXPECT_DOUBLE_EQ(parsed.arrivalSeconds, 0.25);
    EXPECT_DOUBLE_EQ(parsed.completionSeconds, 0.375);
    EXPECT_TRUE(parsed.verified);
}

TEST(RateStore, V2ResultLinesStayReadable)
{
    // A v2 store (no iteration records, no rate fields) written by an
    // older harness must keep loading under the v3 reader.
    const std::string v2 =
        "{\"schema\":\"splash4-results-v2\",\"type\":\"result\","
        "\"jobId\":\"0123456789abcdef\",\"benchmark\":\"fft\","
        "\"suite\":\"splash4\",\"engine\":\"sim\",\"threads\":4,"
        "\"repetition\":0,\"seed\":1,\"status\":\"ok\","
        "\"verified\":true,\"attempts\":1,\"simCycles\":123,"
        "\"lineTransfers\":0,\"transfersSameCore\":0,"
        "\"transfersSameDomain\":0,\"transfersCrossDomain\":0,"
        "\"transfersMemory\":0,\"wallSeconds\":0.5,"
        "\"barrierCrossings\":1,\"lockAcquires\":0,\"ticketOps\":0,"
        "\"sumOps\":0,\"stackOps\":0,\"flagOps\":0,\"workUnits\":10,"
        "\"verifyMessage\":\"ok\",\"statusDetail\":\"\"}";
    ResultRecord record;
    ASSERT_TRUE(parseJsonLine(v2, record));
    EXPECT_EQ(record.mode, RunMode::Single);
    EXPECT_EQ(record.simCycles, 123u);

    // And v2 started intents likewise.
    const std::string started =
        "{\"schema\":\"splash4-results-v2\",\"type\":\"started\","
        "\"jobId\":\"0123456789abcdef\",\"benchmark\":\"fft\","
        "\"attempt\":1}";
    std::string jobId;
    int attempt = 0;
    ASSERT_TRUE(parseStartedLine(started, jobId, attempt));
    EXPECT_EQ(attempt, 1);

    // Iteration records are a v3 feature: a v2-stamped one is not a
    // valid iteration line.
    IterationSample sample;
    std::string id;
    std::string v2iter = toIterationJsonLine("0123456789abcdef", "fft",
                                             sample);
    const auto pos = v2iter.find("splash4-results-v3");
    ASSERT_NE(pos, std::string::npos);
    v2iter.replace(pos, 18, "splash4-results-v2");
    EXPECT_FALSE(parseIterationLine(v2iter, id, sample));
}

TEST(RateStore, SchedulerPersistsAndResumesIterations)
{
    ensurePlantedRegistered();
    const std::string path =
        ::testing::TempDir() + "/rate_resume_store.jsonl";
    std::remove(path.c_str());

    RunPlan plan;
    plan.add("zz-work", rateConfig(4));
    const std::string jobId = plan.job(0).jobId;
    SchedulerOptions options;

    std::vector<JobOutcome> first;
    {
        ResultStore store(path);
        store.load();
        first = runPlan(plan, options, &store);
        ASSERT_EQ(first.size(), 1u);
        ASSERT_EQ(first[0].result.iterations.size(), 4u);
        EXPECT_EQ(store.iterationsFor(jobId).size(), 4u);
    }
    {
        // A fresh process loading the same store must see the full
        // iteration stream and replay the terminal without re-running.
        ResultStore store(path);
        store.load();
        EXPECT_EQ(store.iterationsFor(jobId).size(), 4u);
        const auto resumed = runPlan(plan, options, &store);
        ASSERT_EQ(resumed.size(), 1u);
        EXPECT_TRUE(resumed[0].resumed);
        ASSERT_EQ(resumed[0].result.iterations.size(), 4u);
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(resumed[0].result.iterations[i].completionCycles,
                      first[0].result.iterations[i].completionCycles);
    }
    {
        // Drop the terminal record but keep the iteration records:
        // the re-run must continue from the persisted prefix, not
        // restart at iteration 0 (mid-rate-job kill + --resume).
        ResultStore store(path);
        store.load();
        std::vector<IterationSample> kept =
            store.iterationsFor(jobId);
        ASSERT_EQ(kept.size(), 4u);
        kept.resize(2);
        const std::string partial =
            ::testing::TempDir() + "/rate_resume_partial.jsonl";
        std::remove(partial.c_str());
        {
            ResultStore rewrite(partial);
            rewrite.load();
            for (const IterationSample& sample : kept)
                rewrite.appendIteration(jobId, "zz-work", sample);
        }
        ResultStore store2(partial);
        store2.load();
        EXPECT_EQ(store2.iterationsFor(jobId).size(), 2u);
        const auto continued = runPlan(plan, options, &store2);
        ASSERT_EQ(continued.size(), 1u);
        EXPECT_FALSE(continued[0].resumed);
        ASSERT_EQ(continued[0].result.iterations.size(), 4u);
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(
                continued[0].result.iterations[i].completionCycles,
                first[0].result.iterations[i].completionCycles)
                << "iteration " << i;
        std::remove(partial.c_str());
    }
    std::remove(path.c_str());
}

TEST(RateStore, ContiguousPrefixStopsAtGaps)
{
    const std::string path =
        ::testing::TempDir() + "/rate_gap_store.jsonl";
    std::remove(path.c_str());
    ResultStore store(path);
    store.load();
    IterationSample sample;
    sample.verified = true;
    for (const int index : {0, 1, 3}) {
        sample.iteration = index;
        sample.completionCycles = 100u * (index + 1);
        store.appendIteration("aaaabbbbccccdddd", "fft", sample);
    }
    // Iteration 2 never completed: the resumable prefix is [0, 1] —
    // resuming past a hole would run iterations against the wrong
    // predecessor state.
    const auto prefix = store.iterationsFor("aaaabbbbccccdddd");
    ASSERT_EQ(prefix.size(), 2u);
    EXPECT_EQ(prefix[1].iteration, 1);
    std::remove(path.c_str());
}

} // namespace
} // namespace splash
