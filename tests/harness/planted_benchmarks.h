/**
 * @file
 * Planted benchmark fixtures shared by the harness-pipeline tests:
 * a clean run, a verification failure, a deadlock, a crash, plus the
 * Run-Guard trio — a slow-but-alive sleeper (heartbeats), a memory
 * hog (RLIMIT_AS), and a CPU spinner (RLIMIT_CPU).
 * ensurePlantedRegistered() is inline so its registration guard is
 * one shared static across every test TU in the binary (the registry
 * panics on duplicates).
 */

#ifndef SPLASH_TESTS_HARNESS_PLANTED_BENCHMARKS_H
#define SPLASH_TESTS_HARNESS_PLANTED_BENCHMARKS_H

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "core/benchmark.h"
#include "engine/engine.h"

namespace splash {
namespace planted {

/** Boilerplate base for the planted fixtures. */
class PlantedBenchmark : public Benchmark
{
  public:
    std::string
    description() const override
    {
        return "planted harness-pipeline fixture";
    }
    std::string inputDescription() const override { return "none"; }
    bool
    verify(std::string& message) override
    {
        message = "planted ok";
        return true;
    }
};

/** Completes and verifies. */
class OkBenchmark : public PlantedBenchmark
{
  public:
    std::string name() const override { return "zz-ok"; }
    void
    setup(World& world, const Params&) override
    {
        bar_ = world.createBarrier();
    }
    void
    run(Context& ctx) override
    {
        ctx.work(10);
        ctx.barrier(bar_);
    }

  private:
    BarrierHandle bar_;
};

/** Completes and verifies after an amount of work set by a param. */
class WorkBenchmark : public PlantedBenchmark
{
  public:
    std::string name() const override { return "zz-work"; }
    void
    setup(World& world, const Params& params) override
    {
        bar_ = world.createBarrier();
        units_ = params.getInt("units", 50);
        seed_ = params.getInt("seed", 0);
    }
    void
    run(Context& ctx) override
    {
        // Touch the seed so runs with different derived input seeds
        // produce different cycle counts (seed-plumbing tests).
        ctx.work(static_cast<std::uint64_t>(
            units_ + (seed_ % 7) + ctx.tid()));
        ctx.barrier(bar_);
    }

  private:
    BarrierHandle bar_;
    std::int64_t units_ = 50;
    std::int64_t seed_ = 0;
};

/** Completes but fails its self-check. */
class VerifyFailBenchmark : public OkBenchmark
{
  public:
    std::string name() const override { return "zz-verifyfail"; }
    bool
    verify(std::string& message) override
    {
        message = "planted verification failure";
        return false;
    }
};

/** Thread 0 keeps the lock forever; everyone else blocks on it. */
class DeadlockBenchmark : public PlantedBenchmark
{
  public:
    std::string name() const override { return "zz-deadlock"; }
    void
    setup(World& world, const Params&) override
    {
        lock_ = world.createLock();
    }
    void
    run(Context& ctx) override
    {
        if (ctx.tid() == 0) {
            ctx.lockAcquire(lock_);
        } else {
            ctx.work(100);
            ctx.lockAcquire(lock_);
        }
    }

  private:
    LockHandle lock_;
};

/** Aborts the process mid-run (only sane under fork isolation). */
class CrashBenchmark : public PlantedBenchmark
{
  public:
    std::string name() const override { return "zz-crash"; }
    void
    setup(World& world, const Params&) override
    {
        bar_ = world.createBarrier();
    }
    void
    run(Context& ctx) override
    {
        ctx.barrier(bar_);
        if (ctx.tid() == 0)
            std::abort();
        ctx.barrier(bar_);
    }

  private:
    BarrierHandle bar_;
};

/**
 * Sleeps (real wall time) in setup, then completes and verifies.
 * Slow but demonstrably alive: under fork isolation the heartbeat
 * thread keeps ticking through the sleep, so only harnesses *without*
 * heartbeats may classify it as hung.
 */
class SleepyBenchmark : public OkBenchmark
{
  public:
    std::string name() const override { return "zz-sleepy"; }
    void
    setup(World& world, const Params& params) override
    {
        OkBenchmark::setup(world, params);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            params.getInt("sleepMs", 300)));
    }
};

/**
 * Allocates `mb` megabytes in setup (default 64).  Under a smaller
 * RLIMIT_AS the allocation fails and the child exits through the
 * OutOfMemory exit-code protocol; unlimited, it completes normally.
 */
class HogBenchmark : public OkBenchmark
{
  public:
    std::string name() const override { return "zz-hog"; }
    void
    setup(World& world, const Params& params) override
    {
        OkBenchmark::setup(world, params);
        const std::size_t bytes =
            static_cast<std::size_t>(params.getInt("mb", 64)) * 1024 *
            1024;
        hoard_.reset(new char[bytes]);
        hoard_[0] = 1; // keep the allocation observable
    }

  private:
    std::unique_ptr<char[]> hoard_;
};

/**
 * Burns CPU forever in setup.  Only RLIMIT_CPU (SIGXCPU -> CpuLimit)
 * can end it promptly; never run it without that limit armed.
 */
class SpinBenchmark : public OkBenchmark
{
  public:
    std::string name() const override { return "zz-spin"; }
    void
    setup(World& world, const Params& params) override
    {
        OkBenchmark::setup(world, params);
        volatile std::uint64_t x = 0;
        for (;;)
            ++x;
    }
};

inline void
ensurePlantedRegistered()
{
    static const bool done = [] {
        registerBenchmark("zz-ok",
                          [] { return std::make_unique<OkBenchmark>(); });
        registerBenchmark("zz-work", [] {
            return std::make_unique<WorkBenchmark>();
        });
        registerBenchmark("zz-verifyfail", [] {
            return std::make_unique<VerifyFailBenchmark>();
        });
        registerBenchmark("zz-deadlock", [] {
            return std::make_unique<DeadlockBenchmark>();
        });
        registerBenchmark("zz-crash", [] {
            return std::make_unique<CrashBenchmark>();
        });
        registerBenchmark("zz-sleepy", [] {
            return std::make_unique<SleepyBenchmark>();
        });
        registerBenchmark("zz-hog", [] {
            return std::make_unique<HogBenchmark>();
        });
        registerBenchmark("zz-spin", [] {
            return std::make_unique<SpinBenchmark>();
        });
        return true;
    }();
    (void)done;
}

/** Small deterministic sim configuration for pipeline tests. */
inline RunConfig
simConfig()
{
    RunConfig config;
    config.threads = 4;
    config.engine = EngineKind::Sim;
    config.suite = SuiteVersion::Splash4;
    config.profile = "test4";
    config.watchdog.enabled = true;
    return config;
}

} // namespace planted
} // namespace splash

#endif // SPLASH_TESTS_HARNESS_PLANTED_BENCHMARKS_H
