/**
 * @file
 * Scheduler tests: core-set placement (disjointness, packed vs
 * spread shape, oversubscription queuing, wider-than-machine
 * degradation), plan execution semantics carried over from the old
 * suite runner (failure rows don't stop the plan, exit codes), the
 * resume path (terminal records are skipped, unfinished jobs re-run,
 * results bit-identical), and parallel/serial equivalence under the
 * deterministic sim engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "harness/scheduler.h"
#include "planted_benchmarks.h"

namespace splash {
namespace {

using planted::ensurePlantedRegistered;
using planted::simConfig;

TEST(Placement, ParseAndName)
{
    EXPECT_EQ(parsePlacement("none"), Placement::None);
    EXPECT_EQ(parsePlacement("packed"), Placement::Packed);
    EXPECT_EQ(parsePlacement("spread"), Placement::Spread);
    EXPECT_STREQ(toString(Placement::Spread), "spread");
}

TEST(CoreAllocator, PackedSetsAreDisjointAndContiguous)
{
    CoreAllocator alloc(16, Placement::Packed);
    std::vector<int> a, b;
    ASSERT_TRUE(alloc.tryAcquire(4, a));
    ASSERT_TRUE(alloc.tryAcquire(4, b));
    EXPECT_EQ(a, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(b, (std::vector<int>{4, 5, 6, 7}));
    std::set<int> all(a.begin(), a.end());
    all.insert(b.begin(), b.end());
    EXPECT_EQ(all.size(), 8u);
    EXPECT_EQ(alloc.freeCores(), 8);
}

TEST(CoreAllocator, SpreadSetsAreDisjointAndFarApart)
{
    CoreAllocator alloc(16, Placement::Spread);
    std::vector<int> a, b;
    ASSERT_TRUE(alloc.tryAcquire(4, a));
    // 4 threads over 16 free cores: stride 4.
    EXPECT_EQ(a, (std::vector<int>{0, 4, 8, 12}));
    ASSERT_TRUE(alloc.tryAcquire(4, b));
    std::set<int> overlap;
    std::set<int> aset(a.begin(), a.end());
    for (const int core : b)
        if (aset.count(core))
            overlap.insert(core);
    EXPECT_TRUE(overlap.empty());
}

TEST(CoreAllocator, OversubscriptionQueuesUntilRelease)
{
    CoreAllocator alloc(8, Placement::Packed);
    std::vector<int> a, b, c;
    ASSERT_TRUE(alloc.tryAcquire(6, a));
    // 6 of 8 cores busy: a 4-wide job must wait, not share.
    EXPECT_FALSE(alloc.tryAcquire(4, b));
    EXPECT_TRUE(b.empty());
    alloc.release(a);
    EXPECT_TRUE(alloc.tryAcquire(4, c));
    EXPECT_EQ(alloc.freeCores(), 4);
}

TEST(CoreAllocator, WiderThanMachineDegradesToUnpinned)
{
    CoreAllocator alloc(4, Placement::Packed);
    std::vector<int> cores;
    // Never satisfiable: waiting would deadlock, so it runs unpinned.
    EXPECT_TRUE(alloc.tryAcquire(16, cores));
    EXPECT_TRUE(cores.empty());
    EXPECT_EQ(alloc.freeCores(), 4);
}

TEST(CoreAllocator, PlacementNoneNeverPins)
{
    CoreAllocator alloc(8, Placement::None);
    std::vector<int> cores;
    EXPECT_TRUE(alloc.tryAcquire(4, cores));
    EXPECT_TRUE(cores.empty());
    EXPECT_EQ(alloc.freeCores(), 8);
}

TEST(Scheduler, FailureRowsDoNotStopThePlan)
{
    ensurePlantedRegistered();
    RunPlan plan;
    plan.add("zz-deadlock", simConfig());
    plan.add("zz-ok", simConfig());
    SchedulerOptions options;
    options.retry.maxRetries = 0; // no retry: fail fast
    const auto outcomes = runPlan(plan, options);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].result.status, RunStatus::Deadlock);
    EXPECT_FALSE(outcomes[0].result.verified);
    EXPECT_EQ(outcomes[1].result.status, RunStatus::Ok);
    EXPECT_TRUE(outcomes[1].result.verified);
    EXPECT_EQ(planExitCode(outcomes), 1);
}

TEST(Scheduler, VerifyFailureFailsThePlanAfterRetry)
{
    ensurePlantedRegistered();
    RunPlan plan;
    plan.add("zz-verifyfail", simConfig());
    SchedulerOptions options; // default: one seeded retry
    const auto outcomes = runPlan(plan, options);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].result.status, RunStatus::VerifyFailed);
    EXPECT_EQ(outcomes[0].result.attempts, 2);
    EXPECT_EQ(planExitCode(outcomes), 1);
}

TEST(Scheduler, AllOkPlanExitsZero)
{
    ensurePlantedRegistered();
    RunPlan plan;
    plan.add("zz-ok", simConfig());
    const auto outcomes = runPlan(plan, SchedulerOptions{});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].result.ok());
    EXPECT_EQ(outcomes[0].result.attempts, 1);
    EXPECT_EQ(planExitCode(outcomes), 0);
}

#if defined(__unix__) || defined(__APPLE__)

std::string
tempStorePath(const char* tag)
{
    std::string path = ::testing::TempDir();
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "splash4-" + std::string(tag) + "-" +
            std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());
    return path;
}

TEST(Scheduler, ParallelMatchesSerialBitForBit)
{
    ensurePlantedRegistered();
    RunPlan plan;
    RunConfig config = simConfig();
    for (int units : {10, 20, 30, 40, 50, 60}) {
        config.params.set("units", static_cast<std::int64_t>(units));
        plan.add("zz-work", config);
    }
    SchedulerOptions serial;
    SchedulerOptions parallel;
    parallel.jobs = 4; // auto-enables fork isolation
    const auto a = runPlan(plan, serial);
    const auto b = runPlan(plan, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].job.jobId, b[i].job.jobId);
        EXPECT_EQ(a[i].result.simCycles, b[i].result.simCycles) << i;
        EXPECT_EQ(a[i].result.totals.workUnits,
                  b[i].result.totals.workUnits)
            << i;
        EXPECT_EQ(a[i].result.status, b[i].result.status) << i;
    }
}

TEST(Scheduler, ResumeSkipsCompletedJobsBitIdentically)
{
    ensurePlantedRegistered();
    RunPlan plan;
    RunConfig config = simConfig();
    for (int units : {11, 22, 33, 44}) {
        config.params.set("units", static_cast<std::int64_t>(units));
        plan.add("zz-work", config);
    }

    // Uninterrupted baseline, persisted to a store.
    const std::string fullPath = tempStorePath("resume-full");
    ResultStore full(fullPath);
    const auto baseline = runPlan(plan, SchedulerOptions{}, &full);

    // Simulate a killed campaign: a store holding only the first two
    // terminal records.
    const std::string partialPath = tempStorePath("resume-partial");
    {
        ResultStore partial(partialPath);
        partial.append(
            makeResultRecord(baseline[0].job, baseline[0].result));
        partial.append(
            makeResultRecord(baseline[1].job, baseline[1].result));
    }

    ResultStore resumed(partialPath);
    ASSERT_EQ(resumed.load(), 2u);
    const auto outcomes =
        runPlan(plan, SchedulerOptions{}, &resumed);
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_TRUE(outcomes[0].resumed);
    EXPECT_TRUE(outcomes[1].resumed);
    EXPECT_FALSE(outcomes[2].resumed);
    EXPECT_FALSE(outcomes[3].resumed);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_EQ(outcomes[i].result.simCycles,
                  baseline[i].result.simCycles)
            << i;
        EXPECT_EQ(outcomes[i].result.totals.workUnits,
                  baseline[i].result.totals.workUnits)
            << i;
        EXPECT_EQ(outcomes[i].result.status, baseline[i].result.status)
            << i;
    }
    // The re-run jobs were appended, so the store is now complete and
    // a second resume re-runs nothing.
    ASSERT_EQ(resumed.size(), 4u);
    const auto third = runPlan(plan, SchedulerOptions{}, &resumed);
    for (const auto& outcome : third)
        EXPECT_TRUE(outcome.resumed);
    std::remove(fullPath.c_str());
    std::remove(partialPath.c_str());
}

TEST(Scheduler, PlacementRunsPinnedJobsToCompletion)
{
    // On this CI host there may be a single core; placement must
    // degrade gracefully (warn + unpinned) rather than fail, and with
    // injected plentiful cores the plan must still complete with
    // correct results.
    ensurePlantedRegistered();
    RunPlan plan;
    RunConfig config = simConfig();
    config.threads = 2;
    for (int units : {10, 20, 30}) {
        config.params.set("units", static_cast<std::int64_t>(units));
        plan.add("zz-work", config);
    }
    SchedulerOptions options;
    options.jobs = 2;
    options.placement = Placement::Packed;
    options.totalCores = 64; // simulate a big box
    const auto outcomes = runPlan(plan, options);
    ASSERT_EQ(outcomes.size(), 3u);
    for (const auto& outcome : outcomes) {
        EXPECT_TRUE(outcome.result.ok());
        // Each dispatched job got a core set sized to its threads.
        EXPECT_EQ(outcome.job.config.cpuAffinity.size(), 2u);
    }
}

#endif // fork isolation

} // namespace
} // namespace splash
