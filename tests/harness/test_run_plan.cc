/**
 * @file
 * Run-plan tests: content-derived job identity (what it covers, what
 * it deliberately excludes), the seed-derivation policy (inputs keyed
 * by workload identity, chaos keyed by full job identity), add()
 * idempotence, and the standard suite-plan builder.
 */

#include <gtest/gtest.h>

#include "core/run_plan.h"
#include "planted_benchmarks.h"

namespace splash {
namespace {

using planted::simConfig;

TEST(JobId, StableForIdenticalContent)
{
    EXPECT_EQ(computeJobId("fft", simConfig(), 0),
              computeJobId("fft", simConfig(), 0));
    EXPECT_EQ(computeJobId("fft", simConfig(), 0).size(), 16u);
}

TEST(JobId, CoversResultDeterminingConfig)
{
    const RunConfig base = simConfig();
    const std::string id = computeJobId("fft", base, 0);

    EXPECT_NE(computeJobId("lu", base, 0), id);
    EXPECT_NE(computeJobId("fft", base, 1), id);

    RunConfig c = base;
    c.threads = 8;
    EXPECT_NE(computeJobId("fft", c, 0), id);
    c = base;
    c.suite = SuiteVersion::Splash3;
    EXPECT_NE(computeJobId("fft", c, 0), id);
    c = base;
    c.engine = EngineKind::Native;
    EXPECT_NE(computeJobId("fft", c, 0), id);
    c = base;
    c.profile = "epyc64";
    EXPECT_NE(computeJobId("fft", c, 0), id);
    c = base;
    c.syncProfile = true;
    EXPECT_NE(computeJobId("fft", c, 0), id);
    c = base;
    c.chaos.enabled = true;
    EXPECT_NE(computeJobId("fft", c, 0), id);
    c = base;
    c.params.set("keys", static_cast<std::int64_t>(4096));
    EXPECT_NE(computeJobId("fft", c, 0), id);
    c = base;
    c.params.set("seed", static_cast<std::int64_t>(99));
    EXPECT_NE(computeJobId("fft", c, 0), id);
}

TEST(JobId, ExcludesExecutionPolicy)
{
    // Watchdog budgets, placement, and isolation cannot change a
    // run's results, so a resumed campaign may change them without
    // invalidating its store.
    const RunConfig base = simConfig();
    const std::string id = computeJobId("fft", base, 0);

    RunConfig c = base;
    c.watchdog.enabled = !c.watchdog.enabled;
    c.watchdog.maxWallSeconds = 123;
    EXPECT_EQ(computeJobId("fft", c, 0), id);
    c = base;
    c.cpuAffinity = {0, 1, 2, 3};
    EXPECT_EQ(computeJobId("fft", c, 0), id);
}

TEST(JobId, MachineProfileOnlyMattersUnderSim)
{
    RunConfig native = simConfig();
    native.engine = EngineKind::Native;
    RunConfig other = native;
    other.profile = "epyc64";
    // The sim machine profile is dead config for a native run.
    EXPECT_EQ(computeJobId("fft", native, 0),
              computeJobId("fft", other, 0));
}

TEST(RunPlan, AddIsIdempotentByContent)
{
    RunPlan plan;
    const std::size_t a = plan.add("zz-ok", simConfig(), 0);
    const std::size_t b = plan.add("zz-ok", simConfig(), 0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(plan.size(), 1u);
    const std::size_t c = plan.add("zz-ok", simConfig(), 1);
    EXPECT_NE(a, c);
    EXPECT_EQ(plan.size(), 2u);
}

TEST(RunPlan, InputSeedIsKeyedByWorkloadIdentityOnly)
{
    // The papers compare the same algorithm over the same data across
    // suites/engines/threads, so the derived input seed must not vary
    // with any of those...
    RunPlan plan;
    RunConfig s4 = simConfig();
    s4.params.set("seed", static_cast<std::int64_t>(7));
    RunConfig s3 = s4;
    s3.suite = SuiteVersion::Splash3;
    RunConfig native = s4;
    native.engine = EngineKind::Native;
    RunConfig wide = s4;
    wide.threads = 64;

    const auto seedOf = [&](std::size_t index) {
        return plan.job(index).config.params.getInt("seed", -1);
    };
    const std::size_t a = plan.add("zz-work", s4, 0);
    const std::size_t b = plan.add("zz-work", s3, 0);
    const std::size_t c = plan.add("zz-work", native, 0);
    const std::size_t d = plan.add("zz-work", wide, 0);
    EXPECT_EQ(seedOf(a), seedOf(b));
    EXPECT_EQ(seedOf(a), seedOf(c));
    EXPECT_EQ(seedOf(a), seedOf(d));
    // ...but must vary with the workload identity (benchmark, rep)
    // and with the user's base seed.
    const std::size_t rep1 = plan.add("zz-work", s4, 1);
    EXPECT_NE(seedOf(a), seedOf(rep1));
    const std::size_t other = plan.add("zz-ok", s4, 0);
    EXPECT_NE(seedOf(a), seedOf(other));
    RunConfig otherBase = s4;
    otherBase.params.set("seed", static_cast<std::int64_t>(8));
    const std::size_t reseeded = plan.add("zz-work", otherBase, 0);
    EXPECT_NE(seedOf(a), seedOf(reseeded));
}

TEST(RunPlan, ChaosSeedIsKeyedByFullJobIdentity)
{
    RunPlan plan;
    RunConfig config = simConfig();
    config.chaos = chaosPreset(1, 42);
    const std::size_t a = plan.add("zz-work", config, 0);
    RunConfig wide = config;
    wide.threads = 64;
    const std::size_t b = plan.add("zz-work", wide, 0);
    // Derived chaos seeds are per-job unique...
    EXPECT_NE(plan.job(a).config.chaos.seed,
              plan.job(b).config.chaos.seed);
    // ...and deterministic: an identical plan derives them again.
    RunPlan again;
    const std::size_t a2 = again.add("zz-work", config, 0);
    EXPECT_EQ(plan.job(a).config.chaos.seed,
              again.job(a2).config.chaos.seed);
}

TEST(RunPlan, DerivedSeedsDoNotChangeTheJobId)
{
    // Ids hash the base config; the derivation must not feed back
    // into the identity (or resume could never find its records).
    RunPlan plan;
    RunConfig config = simConfig();
    config.params.set("seed", static_cast<std::int64_t>(7));
    const std::size_t index = plan.add("zz-work", config, 0);
    EXPECT_EQ(plan.job(index).jobId, computeJobId("zz-work", config, 0));
    EXPECT_NE(plan.job(index).config.params.getInt("seed", -1),
              config.params.getInt("seed", -1));
}

TEST(RunPlan, BuildSuitePlanOrdersNameMajorRepMinor)
{
    const RunPlan plan =
        buildSuitePlan({"zz-a", "zz-b"}, simConfig(), 2);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.job(0).benchmark, "zz-a");
    EXPECT_EQ(plan.job(0).repetition, 0);
    EXPECT_EQ(plan.job(1).benchmark, "zz-a");
    EXPECT_EQ(plan.job(1).repetition, 1);
    EXPECT_EQ(plan.job(2).benchmark, "zz-b");
    EXPECT_EQ(plan.job(3).repetition, 1);
    // All four ids are distinct.
    for (std::size_t i = 0; i < plan.size(); ++i)
        for (std::size_t j = i + 1; j < plan.size(); ++j)
            EXPECT_NE(plan.job(i).jobId, plan.job(j).jobId);
}

TEST(DeriveSeed, MixesBaseAndKey)
{
    EXPECT_EQ(deriveSeed(1, "a"), deriveSeed(1, "a"));
    EXPECT_NE(deriveSeed(1, "a"), deriveSeed(2, "a"));
    EXPECT_NE(deriveSeed(1, "a"), deriveSeed(1, "b"));
    EXPECT_NE(deriveSeed(0, "input/fft/0"), 0u);
}

} // namespace
} // namespace splash
