/**
 * @file
 * Seeded torn-write fuzz for the result store.  Each iteration takes
 * a known-good store (intents interleaved with results), mutilates
 * its tail the way crashes do — truncation at an arbitrary byte,
 * garbage appended without a newline, a garbage line spliced between
 * records — and asserts the recovery contract: load() never crashes,
 * every record it does return is bit-identical to the canonical one,
 * died-mid-run is reported exactly for ids with an intent but no
 * surviving result, and re-appending the missing records yields a
 * store that loads whole.  Mutations are drawn from the iteration
 * seed, so a failure reproduces from its printed iteration number.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/result_store.h"
#include "util/rng.h"

namespace splash {
namespace {

constexpr int kJobs = 6;
constexpr int kIterations = 64;

std::string
fuzzPath(int iteration)
{
    std::string path = ::testing::TempDir();
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "splash4-storefuzz-" + std::to_string(iteration) + ".jsonl";
    std::remove(path.c_str());
    return path;
}

std::string
jobIdOf(int index)
{
    return "fuzz-job-" + std::to_string(index);
}

ResultRecord
canonicalRecord(int index)
{
    ResultRecord rec;
    rec.jobId = jobIdOf(index);
    rec.benchmark = index % 2 == 0 ? "fft" : "lu";
    rec.suite = SuiteVersion::Splash4;
    rec.engine = EngineKind::Sim;
    rec.threads = 4;
    rec.repetition = index;
    rec.seed = 0x1234u + static_cast<std::uint64_t>(index);
    rec.status = RunStatus::Ok;
    rec.verified = true;
    rec.attempts = 1 + index % 3;
    rec.simCycles = 1000u * static_cast<std::uint64_t>(index + 1);
    rec.wallSeconds = 0.01 * (index + 1);
    rec.workUnits = 50u * static_cast<std::uint64_t>(index + 1);
    rec.verifyMessage = "fuzz ok";
    return rec;
}

JobSpec
canonicalJob(int index)
{
    JobSpec job;
    job.jobId = jobIdOf(index);
    job.benchmark = canonicalRecord(index).benchmark;
    return job;
}

/** Canonical store text: intents before each result, per v2. */
std::string
canonicalContent()
{
    std::string text;
    for (int i = 0; i < kJobs; ++i) {
        const ResultRecord rec = canonicalRecord(i);
        for (int a = 1; a <= rec.attempts; ++a)
            text += toStartedJsonLine(rec.jobId, rec.benchmark, a) + "\n";
        text += toJsonLine(rec) + "\n";
    }
    return text;
}

void
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

/** Printable garbage that can never parse as a record. */
std::string
garbage(Rng& rng, std::size_t length)
{
    static const char alphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789#%&()*+,-./:;<=>?@[]^_";
    std::string text;
    for (std::size_t i = 0; i < length; ++i)
        text += alphabet[rng.below(sizeof alphabet - 1)];
    return text;
}

TEST(StoreFuzz, RecoversFromSeededTailMutilation)
{
    const std::string canonical = canonicalContent();
    std::map<std::string, std::string> canonicalLines;
    for (int i = 0; i < kJobs; ++i)
        canonicalLines[jobIdOf(i)] = toJsonLine(canonicalRecord(i));

    for (int iteration = 0; iteration < kIterations; ++iteration) {
        SCOPED_TRACE("iteration " + std::to_string(iteration));
        Rng rng(0xf022u + static_cast<std::uint64_t>(iteration));
        std::string content = canonical;

        switch (rng.below(3)) {
        case 0:
            // Truncate at an arbitrary byte (crash mid-write).
            content = content.substr(0, rng.below(content.size() + 1));
            break;
        case 1:
            // Truncate, then leave unterminated garbage as the tail.
            content = content.substr(0, rng.below(content.size() + 1));
            content += garbage(rng, 1 + rng.below(80));
            break;
        default: {
            // Splice a garbage line at a random line boundary.
            std::vector<std::size_t> boundaries{0};
            for (std::size_t pos = 0;
                 (pos = content.find('\n', pos)) != std::string::npos;)
                boundaries.push_back(++pos);
            const std::size_t at =
                boundaries[rng.below(boundaries.size())];
            content.insert(at, garbage(rng, 1 + rng.below(60)) + "\n");
            break;
        }
        }

        const std::string path = fuzzPath(iteration);
        writeFile(path, content);

        ResultStore store(path);
        const std::size_t loaded = store.load();
        EXPECT_LE(loaded, static_cast<std::size_t>(kJobs));

        std::set<std::string> missing;
        for (int i = 0; i < kJobs; ++i) {
            const std::string id = jobIdOf(i);
            const ResultRecord* rec = store.find(id);
            if (!rec) {
                missing.insert(id);
                // An id with a surviving intent but a lost result must
                // read as died-mid-run; one that lost both reads as
                // never-ran.  Either way it re-runs — never silently
                // counts as done.
                EXPECT_EQ(store.diedMidRun(id),
                          store.startedAttempts(id) > 0);
                continue;
            }
            // Whatever survived is bit-identical to what was written:
            // corruption may lose records, never alter them.
            EXPECT_EQ(toJsonLine(*rec), canonicalLines[id]);
        }

        // Recovery: re-run (here: re-append) the missing jobs; the
        // store must then load whole, torn bytes notwithstanding.
        for (int i = 0; i < kJobs; ++i) {
            if (!missing.count(jobIdOf(i)))
                continue;
            store.appendStarted(canonicalJob(i), 1);
            store.append(canonicalRecord(i));
        }
        ResultStore recovered(path);
        EXPECT_EQ(recovered.load(), static_cast<std::size_t>(kJobs));
        for (int i = 0; i < kJobs; ++i) {
            const ResultRecord* rec = recovered.find(jobIdOf(i));
            ASSERT_NE(rec, nullptr) << jobIdOf(i);
            EXPECT_EQ(toJsonLine(*rec), canonicalLines[jobIdOf(i)]);
            EXPECT_FALSE(recovered.diedMidRun(jobIdOf(i)));
        }
        std::remove(path.c_str());
    }
}

TEST(StoreFuzz, ArmedTearHookAlwaysLeavesALoadableStore)
{
    // Sweep tear seeds: whatever the draws do, a store written under
    // chaos must load without crashing and every surviving record
    // must be exact.  (Convergence of the epoch keying is pinned in
    // test_result_store.cc; this is the blanket safety property.)
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        HarnessChaosOptions chaos;
        chaos.enabled = true;
        chaos.seed = seed;
        chaos.tearStoreProb = 0.5;

        const std::string path =
            fuzzPath(1000 + static_cast<int>(seed));
        {
            ResultStore store(path);
            store.setHarnessChaos(chaos);
            for (int i = 0; i < kJobs; ++i) {
                store.appendStarted(canonicalJob(i), 1);
                store.append(canonicalRecord(i));
            }
            // The writing campaign's own view is always complete.
            EXPECT_EQ(store.size(), static_cast<std::size_t>(kJobs));
        }
        ResultStore store(path);
        const std::size_t loaded = store.load();
        EXPECT_LE(loaded, static_cast<std::size_t>(kJobs));
        for (int i = 0; i < kJobs; ++i) {
            const std::string id = jobIdOf(i);
            if (const ResultRecord* rec = store.find(id))
                EXPECT_EQ(toJsonLine(*rec),
                          toJsonLine(canonicalRecord(i)));
            else
                EXPECT_TRUE(store.diedMidRun(id));
        }
        std::remove(path.c_str());
    }
}

} // namespace
} // namespace splash
