/**
 * @file
 * Result-store tests: JSONL record round trips, append/load
 * persistence, last-record-wins on duplicate ids, and corruption
 * tolerance — a malformed interior line is skipped and a truncated
 * final line (the record a killed campaign was writing) is dropped
 * with the file trimmed back to the last complete record.
 *
 * Run-Guard (v2) coverage: started-intent records and the
 * died-mid-run distinction, v1 files loading read-only, and the
 * seeded tear hook — including the epoch keying that lets a torn
 * job's re-append stop tearing on resume, so resume loops converge.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "harness/result_store.h"

namespace splash {
namespace {

std::string
tempPath(const char* tag)
{
    std::string path = ::testing::TempDir();
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "splash4-store-" + std::string(tag) + "-" +
#if defined(__unix__) || defined(__APPLE__)
            std::to_string(::getpid()) +
#endif
            ".jsonl";
    std::remove(path.c_str());
    return path;
}

ResultRecord
sampleRecord(const std::string& jobId)
{
    ResultRecord rec;
    rec.jobId = jobId;
    rec.benchmark = "fft";
    rec.suite = SuiteVersion::Splash4;
    rec.engine = EngineKind::Sim;
    rec.threads = 8;
    rec.repetition = 1;
    rec.seed = 0xdeadbeefcafe1234ull;
    rec.status = RunStatus::Ok;
    rec.verified = true;
    rec.attempts = 1;
    rec.simCycles = 123456;
    rec.lineTransfers = 789;
    rec.wallSeconds = 0.125;
    rec.barrierCrossings = 16;
    rec.lockAcquires = 2;
    rec.ticketOps = 3;
    rec.sumOps = 4;
    rec.stackOps = 5;
    rec.flagOps = 6;
    rec.workUnits = 1000;
    rec.waitPct = 12.5;
    rec.verifyMessage = "checksum ok";
    rec.statusDetail = "";
    return rec;
}

std::string
readAll(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

TEST(ResultRecord, JsonLineRoundTrips)
{
    const ResultRecord rec = sampleRecord("00112233445566aa");
    const std::string line = toJsonLine(rec);
    EXPECT_NE(line.find("\"schema\":\"splash4-results-v3\""),
              std::string::npos);
    EXPECT_NE(line.find("\"type\":\"result\""), std::string::npos);
    ResultRecord back;
    ASSERT_TRUE(parseJsonLine(line, back));
    EXPECT_EQ(back.jobId, rec.jobId);
    EXPECT_EQ(back.benchmark, rec.benchmark);
    EXPECT_EQ(back.suite, rec.suite);
    EXPECT_EQ(back.engine, rec.engine);
    EXPECT_EQ(back.threads, rec.threads);
    EXPECT_EQ(back.repetition, rec.repetition);
    EXPECT_EQ(back.seed, rec.seed);
    EXPECT_EQ(back.status, rec.status);
    EXPECT_EQ(back.verified, rec.verified);
    EXPECT_EQ(back.attempts, rec.attempts);
    EXPECT_EQ(back.simCycles, rec.simCycles);
    EXPECT_EQ(back.lineTransfers, rec.lineTransfers);
    EXPECT_DOUBLE_EQ(back.wallSeconds, rec.wallSeconds);
    EXPECT_EQ(back.workUnits, rec.workUnits);
    EXPECT_DOUBLE_EQ(back.waitPct, rec.waitPct);
    EXPECT_EQ(back.verifyMessage, rec.verifyMessage);
}

TEST(ResultRecord, JsonLineEscapesHostileStrings)
{
    ResultRecord rec = sampleRecord("00112233445566ab");
    rec.status = RunStatus::Crash;
    rec.verified = false;
    rec.statusDetail = "child \"died\"\n\tbadly \\ here";
    const std::string line = toJsonLine(rec);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    ResultRecord back;
    ASSERT_TRUE(parseJsonLine(line, back));
    EXPECT_EQ(back.statusDetail, rec.statusDetail);
    EXPECT_EQ(back.status, RunStatus::Crash);
}

TEST(ResultRecord, NoProfileOmitsWaitPct)
{
    ResultRecord rec = sampleRecord("00112233445566ac");
    rec.waitPct = -1.0;
    const std::string line = toJsonLine(rec);
    EXPECT_EQ(line.find("waitPct"), std::string::npos);
    ResultRecord back;
    ASSERT_TRUE(parseJsonLine(line, back));
    EXPECT_LT(back.waitPct, 0.0);
}

TEST(ResultRecord, ParserRejectsMalformedLines)
{
    ResultRecord rec;
    EXPECT_FALSE(parseJsonLine("", rec));
    EXPECT_FALSE(parseJsonLine("not json", rec));
    EXPECT_FALSE(parseJsonLine("{\"schema\":\"wrong-schema\"}", rec));
    // Truncated mid-record (the kill-during-write shape).
    const std::string full = toJsonLine(sampleRecord("aa"));
    EXPECT_FALSE(
        parseJsonLine(full.substr(0, full.size() / 2), rec));
}

TEST(ResultStore, AppendThenLoadRoundTrips)
{
    const std::string path = tempPath("roundtrip");
    {
        ResultStore store(path);
        store.append(sampleRecord("job-a"));
        ResultRecord b = sampleRecord("job-b");
        b.status = RunStatus::Deadlock;
        b.verified = false;
        store.append(b);
        EXPECT_EQ(store.size(), 2u);
    }
    ResultStore store(path);
    EXPECT_EQ(store.load(), 2u);
    ASSERT_NE(store.find("job-a"), nullptr);
    ASSERT_NE(store.find("job-b"), nullptr);
    EXPECT_EQ(store.find("job-b")->status, RunStatus::Deadlock);
    EXPECT_EQ(store.find("missing"), nullptr);
    std::remove(path.c_str());
}

TEST(ResultStore, LastRecordWinsOnDuplicateIds)
{
    const std::string path = tempPath("dupes");
    {
        ResultStore store(path);
        ResultRecord first = sampleRecord("job-a");
        first.status = RunStatus::Timeout;
        first.verified = false;
        store.append(first);
        store.append(sampleRecord("job-a")); // terminal Ok rerun
    }
    ResultStore store(path);
    EXPECT_EQ(store.load(), 2u);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.find("job-a")->status, RunStatus::Ok);
    std::remove(path.c_str());
}

TEST(ResultStore, TruncatedFinalLineIsDroppedAndTrimmed)
{
    const std::string path = tempPath("truncated");
    {
        ResultStore store(path);
        store.append(sampleRecord("job-a"));
        store.append(sampleRecord("job-b"));
    }
    // Simulate a campaign killed mid-write: append half a record.
    const std::string half =
        toJsonLine(sampleRecord("job-c")).substr(0, 40);
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::app);
        out << half; // no newline
    }
    const std::string before = readAll(path);
    ASSERT_NE(before.find(half), std::string::npos);

    ResultStore store(path);
    EXPECT_EQ(store.load(), 2u); // the partial tail is not a record
    EXPECT_EQ(store.find("job-c"), nullptr);

    // The file was trimmed back to the last complete record, so a
    // subsequent append produces a well-formed store.
    store.append(sampleRecord("job-c"));
    ResultStore reread(path);
    EXPECT_EQ(reread.load(), 3u);
    EXPECT_NE(reread.find("job-c"), nullptr);
    std::remove(path.c_str());
}

TEST(ResultStore, MalformedInteriorLineIsSkipped)
{
    const std::string path = tempPath("interior");
    {
        std::ofstream out(path, std::ios::binary);
        out << toJsonLine(sampleRecord("job-a")) << "\n";
        out << "{{{ corrupted line }}}\n";
        out << toJsonLine(sampleRecord("job-b")) << "\n";
    }
    ResultStore store(path);
    EXPECT_EQ(store.load(), 2u);
    EXPECT_NE(store.find("job-a"), nullptr);
    EXPECT_NE(store.find("job-b"), nullptr);
    std::remove(path.c_str());
}

TEST(ResultStore, MissingFileLoadsEmpty)
{
    ResultStore store(tempPath("missing"));
    EXPECT_EQ(store.load(), 0u);
    EXPECT_EQ(store.size(), 0u);
}

// ---------------------------------------------------------------- //
// Run-Guard: v2 intents, v1 compatibility, the seeded tear hook.    //
// ---------------------------------------------------------------- //

JobSpec
sampleJob(const std::string& jobId, const std::string& benchmark)
{
    JobSpec job;
    job.jobId = jobId;
    job.benchmark = benchmark;
    return job;
}

TEST(ResultRecord, StartedIntentRoundTrips)
{
    const std::string line = toStartedJsonLine("job-a", "fft", 3);
    EXPECT_NE(line.find("\"type\":\"started\""), std::string::npos);
    std::string jobId;
    int attempt = 0;
    ASSERT_TRUE(parseStartedLine(line, jobId, attempt));
    EXPECT_EQ(jobId, "job-a");
    EXPECT_EQ(attempt, 3);
    // An intent is not a result; the result parser must reject it.
    ResultRecord rec;
    EXPECT_FALSE(parseJsonLine(line, rec));
    // And vice versa.
    EXPECT_FALSE(parseStartedLine(toJsonLine(sampleRecord("job-a")),
                                  jobId, attempt));
}

TEST(ResultStore, IntentsDistinguishDiedMidRunFromNeverRan)
{
    const std::string path = tempPath("intents");
    {
        ResultStore store(path);
        store.appendStarted(sampleJob("job-a", "fft"), 1);
        store.appendStarted(sampleJob("job-a", "fft"), 2);
        store.appendStarted(sampleJob("job-b", "lu"), 1);
        store.append(sampleRecord("job-b")); // b finished; a did not
    }
    ResultStore store(path);
    EXPECT_EQ(store.load(), 1u); // intents are not terminal records
    EXPECT_TRUE(store.diedMidRun("job-a"));
    EXPECT_FALSE(store.diedMidRun("job-b"));  // has a terminal record
    EXPECT_FALSE(store.diedMidRun("job-c"));  // never started
    EXPECT_EQ(store.startedAttempts("job-a"), 2);
    EXPECT_EQ(store.startedCount("job-a"), 2);
    EXPECT_EQ(store.startedAttempts("job-c"), 0);
    std::remove(path.c_str());
}

TEST(ResultStore, V1RecordsLoadReadOnly)
{
    const std::string path = tempPath("v1compat");
    // Craft a v1 line: old schema string, no type field.
    std::string v1 = toJsonLine(sampleRecord("job-v1"));
    const std::string from = "\"schema\":\"splash4-results-v3\","
                             "\"type\":\"result\"";
    const std::size_t pos = v1.find(from);
    ASSERT_NE(pos, std::string::npos);
    v1.replace(pos, from.size(),
               "\"schema\":\"splash4-results-v1\"");
    {
        std::ofstream out(path, std::ios::binary);
        out << v1 << "\n";
    }
    ResultStore store(path);
    EXPECT_EQ(store.load(), 1u);
    ASSERT_NE(store.find("job-v1"), nullptr);
    EXPECT_EQ(store.find("job-v1")->status, RunStatus::Ok);
    EXPECT_FALSE(store.diedMidRun("job-v1")); // v1 carries no intents
    std::remove(path.c_str());
}

TEST(ResultStore, ChaosTearLeavesRecoverableStoreThatConverges)
{
    // Find a seed whose tear draw fires on the first write epoch but
    // not the second: the deterministic shape of "this job's record
    // tore once, then its resume re-append survived".
    HarnessChaosOptions chaos;
    chaos.enabled = true;
    chaos.tearStoreProb = 0.5;
    for (chaos.seed = 1;; ++chaos.seed) {
        if (chaos.drawTear("job-a", 1) && !chaos.drawTear("job-a", 2))
            break;
        ASSERT_LT(chaos.seed, 10000u) << "no suitable tear seed found";
    }

    const std::string path = tempPath("tear");
    {
        // Campaign 1: the append tears (epoch 1 = one started intent).
        ResultStore store(path);
        store.setHarnessChaos(chaos);
        store.appendStarted(sampleJob("job-a", "fft"), 1);
        store.append(sampleRecord("job-a"));
        // The in-memory view keeps the full record regardless.
        EXPECT_NE(store.find("job-a"), nullptr);
    }
    {
        // Resume 1: the torn tail is dropped, the job reads as
        // died-mid-run, and the re-append draws epoch 2 — no tear.
        ResultStore store(path);
        store.setHarnessChaos(chaos);
        EXPECT_EQ(store.load(), 0u);
        EXPECT_TRUE(store.diedMidRun("job-a"));
        store.appendStarted(sampleJob("job-a", "fft"), 1);
        EXPECT_EQ(store.startedCount("job-a"), 2);
        store.append(sampleRecord("job-a"));
    }
    // Resume 2: the store is whole; nothing to re-run.
    ResultStore store(path);
    store.setHarnessChaos(chaos);
    EXPECT_EQ(store.load(), 1u);
    ASSERT_NE(store.find("job-a"), nullptr);
    EXPECT_FALSE(store.diedMidRun("job-a"));
    std::remove(path.c_str());
}

TEST(FsyncPolicy, ParsesAndPersists)
{
    EXPECT_EQ(parseFsyncPolicy("none"), FsyncPolicy::None);
    EXPECT_EQ(parseFsyncPolicy("data"), FsyncPolicy::Data);
    EXPECT_EQ(parseFsyncPolicy("full"), FsyncPolicy::Full);
    // Records survive a full-fsync append like any other.
    const std::string path = tempPath("fsync");
    {
        ResultStore store(path);
        store.setFsyncPolicy(FsyncPolicy::Full);
        store.append(sampleRecord("job-a"));
    }
    ResultStore store(path);
    EXPECT_EQ(store.load(), 1u);
    std::remove(path.c_str());
}

} // namespace
} // namespace splash
