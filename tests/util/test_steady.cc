/**
 * @file
 * Steady-state detector and percentile tests (util/steady): MSER
 * truncation on synthetic series with known warmup shapes, the
 * nearest-rank percentile contract, and summarizeRate over synthetic
 * iteration streams for both engine time bases.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/steady.h"

namespace splash {
namespace {

/**
 * Reference MSER: direct per-d evaluation of the rule, same cap and
 * tie-break as the production suffix-sum implementation.  @return the
 * minimal MSER value (the test compares values, not indices, so the
 * two summation orders cannot disagree over a floating-point tie).
 */
double
mserValue(const std::vector<double>& series, std::size_t d)
{
    const std::size_t n = series.size();
    const std::size_t m = n - d;
    double mean = 0;
    for (std::size_t i = d; i < n; ++i)
        mean += series[i];
    mean /= static_cast<double>(m);
    double ss = 0;
    for (std::size_t i = d; i < n; ++i)
        ss += (series[i] - mean) * (series[i] - mean);
    return ss / (static_cast<double>(m) * static_cast<double>(m));
}

TEST(SteadyState, ConstantSeriesNeedsNoWarmup)
{
    const std::vector<double> series(16, 42.0);
    EXPECT_EQ(steadyStateTruncation(series), 0u);
}

TEST(SteadyState, ShortSeriesNeverTruncates)
{
    EXPECT_EQ(steadyStateTruncation({}), 0u);
    EXPECT_EQ(steadyStateTruncation({5.0}), 0u);
    EXPECT_EQ(steadyStateTruncation({9.0, 1.0}), 0u);
    EXPECT_EQ(steadyStateTruncation({9.0, 5.0, 1.0}), 0u);
}

TEST(SteadyState, CleanStepChangeIsCutAtTheStep)
{
    // Three slow warmup iterations, then a constant steady phase: the
    // rule must discard exactly the warmup (ties between equally-flat
    // suffixes break toward keeping more data).
    const std::vector<double> series = {100, 100, 100, 10, 10,
                                        10,  10,  10,  10, 10};
    EXPECT_EQ(steadyStateTruncation(series), 3u);
}

TEST(SteadyState, LinearDriftHitsTheHalfCap)
{
    // A series that never settles: the rule wants to discard
    // everything, and the n/2 guard must stop it.
    std::vector<double> series;
    for (int i = 1; i <= 10; ++i)
        series.push_back(static_cast<double>(i));
    EXPECT_EQ(steadyStateTruncation(series), 5u);
}

TEST(SteadyState, HeavyTailedNoiseStaysWithinTheCap)
{
    // Constant latencies with sparse large spikes (GC-pause shape):
    // whatever the rule picks must respect its contract — at most
    // n/2 — and achieve the minimal MSER value.
    std::vector<double> series(40, 20.0);
    series[7] = 400.0;
    series[19] = 900.0;
    series[33] = 400.0;
    const std::size_t d = steadyStateTruncation(series);
    EXPECT_LE(d, series.size() / 2);
    double best = mserValue(series, 0);
    for (std::size_t cand = 1; cand <= series.size() / 2; ++cand)
        best = std::min(best, mserValue(series, cand));
    EXPECT_NEAR(mserValue(series, d), best, 1e-9 * (1.0 + best));
}

TEST(SteadyState, MatchesBruteForceReference)
{
    // Deterministic pseudo-random series: the suffix-sum
    // implementation must achieve the same minimal MSER value as the
    // naive per-d evaluation on every one.
    std::uint64_t state = 12345;
    const auto next = [&state] {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<double>((state >> 33) % 1000);
    };
    for (int round = 0; round < 8; ++round) {
        std::vector<double> series;
        const std::size_t n = 5 + 7 * static_cast<std::size_t>(round);
        for (std::size_t i = 0; i < n; ++i)
            series.push_back(next());
        const std::size_t d = steadyStateTruncation(series);
        ASSERT_LE(d, n / 2);
        double best = mserValue(series, 0);
        for (std::size_t cand = 1; cand <= n / 2; ++cand)
            best = std::min(best, mserValue(series, cand));
        EXPECT_NEAR(mserValue(series, d), best, 1e-9 * (1.0 + best))
            << "round " << round;
    }
}

TEST(Percentile, NearestRankSemantics)
{
    const std::vector<double> ten = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    // rank = ceil(p/100 * n), clamped to [1, n]; no interpolation.
    EXPECT_EQ(percentileNearestRank(ten, 50), 5.0);
    EXPECT_EQ(percentileNearestRank(ten, 90), 9.0);
    EXPECT_EQ(percentileNearestRank(ten, 95), 10.0);
    EXPECT_EQ(percentileNearestRank(ten, 99), 10.0);
    EXPECT_EQ(percentileNearestRank(ten, 0), 1.0);
    EXPECT_EQ(percentileNearestRank(ten, 100), 10.0);
}

TEST(Percentile, SortsItsInputAndHandlesEdges)
{
    EXPECT_EQ(percentileNearestRank({}, 50), 0.0);
    EXPECT_EQ(percentileNearestRank({7.0}, 1), 7.0);
    EXPECT_EQ(percentileNearestRank({7.0}, 99), 7.0);
    const std::vector<double> unsorted = {9, 1, 5, 3, 7};
    EXPECT_EQ(percentileNearestRank(unsorted, 50), 5.0);
    EXPECT_EQ(percentileNearestRank(unsorted, 100), 9.0);
}

IterationSample
simSample(int iteration, VTime arrival, VTime completion)
{
    IterationSample sample;
    sample.iteration = iteration;
    sample.arrivalCycles = arrival;
    sample.startCycles = arrival;
    sample.completionCycles = completion;
    sample.verified = true;
    return sample;
}

TEST(SummarizeRate, EmptyStreamIsAllZeros)
{
    const RateSummary summary = summarizeRate({}, EngineKind::Sim);
    EXPECT_EQ(summary.iterations, 0);
    EXPECT_EQ(summary.warmupIterations, 0);
    EXPECT_EQ(summary.opsPerSec, 0.0);
    EXPECT_EQ(summary.p50, 0.0);
}

TEST(SummarizeRate, ConstantSimStreamSustainsNominalRate)
{
    // Five back-to-back iterations of 1000 cycles each: no warmup,
    // flat latency, and 5 completions over 5000 virtual cycles at the
    // 1 GHz nominal clock = 1e6 ops/sec.
    std::vector<IterationSample> stream;
    for (int i = 0; i < 5; ++i)
        stream.push_back(simSample(i, static_cast<VTime>(i) * 1000,
                                   static_cast<VTime>(i + 1) * 1000));
    const RateSummary summary = summarizeRate(stream, EngineKind::Sim);
    EXPECT_EQ(summary.iterations, 5);
    EXPECT_EQ(summary.warmupIterations, 0);
    EXPECT_TRUE(summary.simTime);
    EXPECT_EQ(summary.p50, 1000.0);
    EXPECT_EQ(summary.p99, 1000.0);
    EXPECT_NEAR(summary.steadySpanSeconds, 5000.0 / kSimNominalHz,
                1e-12);
    EXPECT_NEAR(summary.opsPerSec, 1e6, 1e-3);
}

TEST(SummarizeRate, WarmupIsExcludedFromTheSteadySpan)
{
    // Four slow warmup iterations then eight fast ones: the steady
    // span starts at the last warmup completion, and the percentiles
    // see only the fast latencies.
    std::vector<IterationSample> stream;
    VTime clock = 0;
    for (int i = 0; i < 12; ++i) {
        const VTime latency = i < 4 ? 5000 : 100;
        stream.push_back(simSample(i, clock, clock + latency));
        clock += latency;
    }
    const RateSummary summary = summarizeRate(stream, EngineKind::Sim);
    EXPECT_EQ(summary.iterations, 12);
    EXPECT_EQ(summary.warmupIterations, 4);
    EXPECT_EQ(summary.p50, 100.0);
    EXPECT_EQ(summary.p99, 100.0);
    // 8 steady completions over 8 * 100 cycles.
    EXPECT_NEAR(summary.steadySpanSeconds, 800.0 / kSimNominalHz,
                1e-12);
    EXPECT_NEAR(summary.opsPerSec,
                8.0 / (800.0 / kSimNominalHz), 1e-3);
}

TEST(SummarizeRate, NativeStreamUsesWallSeconds)
{
    std::vector<IterationSample> stream;
    for (int i = 0; i < 6; ++i) {
        IterationSample sample;
        sample.iteration = i;
        sample.arrivalSeconds = 0.010 * i;
        sample.startSeconds = sample.arrivalSeconds;
        sample.completionSeconds = sample.arrivalSeconds + 0.010;
        sample.verified = true;
        stream.push_back(sample);
    }
    const RateSummary summary =
        summarizeRate(stream, EngineKind::Native);
    EXPECT_FALSE(summary.simTime);
    EXPECT_EQ(summary.warmupIterations, 0);
    EXPECT_NEAR(summary.p50, 0.010, 1e-12);
    EXPECT_NEAR(summary.steadySpanSeconds, 0.060, 1e-9);
    EXPECT_NEAR(summary.opsPerSec, 100.0, 1e-6);
}

} // namespace
} // namespace splash
