#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace splash {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, NormalHasReasonableMoments)
{
    Rng rng(10);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(5);
    const auto first = rng.next();
    rng.next();
    rng.reseed(5);
    EXPECT_EQ(rng.next(), first);
}

TEST(Rng, ValuesAreWellSpread)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.next());
    EXPECT_EQ(seen.size(), 1000u);
}

} // namespace
} // namespace splash
