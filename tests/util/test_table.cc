#include <gtest/gtest.h>

#include "util/table.h"

namespace splash {
namespace {

TEST(Table, MarkdownContainsHeadersAndCells)
{
    Table t({"name", "value"});
    t.cell("alpha").cell(1.5, 1).endRow();
    const std::string md = t.toMarkdown();
    EXPECT_NE(md.find("name"), std::string::npos);
    EXPECT_NE(md.find("alpha"), std::string::npos);
    EXPECT_NE(md.find("1.5"), std::string::npos);
}

TEST(Table, CsvEscapesCommas)
{
    Table t({"a"});
    t.cell("x,y").endRow();
    EXPECT_NE(t.toCsv().find("\"x,y\""), std::string::npos);
}

TEST(Table, CsvRowsAndHeader)
{
    Table t({"a", "b"});
    t.cell("1").cell("2").endRow();
    t.cell("3").cell("4").endRow();
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, EndRowPadsShortRows)
{
    Table t({"a", "b", "c"});
    t.cell("only").endRow();
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.toCsv(), "a,b,c\nonly,,\n");
}

TEST(Table, IntegerCells)
{
    Table t({"n"});
    t.cell(std::uint64_t{123456789}).endRow();
    EXPECT_NE(t.toCsv().find("123456789"), std::string::npos);
}

TEST(Table, FormatDoublePrecision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(Table, ColumnsAlignedInMarkdown)
{
    Table t({"x", "longheader"});
    t.cell("a").cell("b").endRow();
    const std::string md = t.toMarkdown();
    // Every line has the same length in an aligned table.
    std::size_t eol = md.find('\n');
    const std::size_t first = eol;
    std::size_t pos = eol + 1;
    while (pos < md.size()) {
        eol = md.find('\n', pos);
        EXPECT_EQ(eol - pos, first);
        pos = eol + 1;
    }
}

} // namespace
} // namespace splash
