#include <gtest/gtest.h>

#include "util/cli.h"

namespace splash {
namespace {

CliArgs
parse(std::initializer_list<const char*> argv)
{
    std::vector<const char*> v{"prog"};
    v.insert(v.end(), argv.begin(), argv.end());
    return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, EqualsSyntax)
{
    auto args = parse({"--threads=8"});
    EXPECT_EQ(args.getInt("threads", 1), 8);
}

TEST(Cli, SpaceSyntax)
{
    auto args = parse({"--suite", "splash3"});
    EXPECT_EQ(args.get("suite", ""), "splash3");
}

TEST(Cli, BareFlagIsTrue)
{
    auto args = parse({"--detail"});
    EXPECT_TRUE(args.has("detail"));
    EXPECT_EQ(args.get("detail", ""), "1");
}

TEST(Cli, PositionalCollected)
{
    auto args = parse({"radix", "--threads=2", "extra"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "radix");
    EXPECT_EQ(args.positional()[1], "extra");
}

TEST(Cli, DefaultsWhenAbsent)
{
    auto args = parse({});
    EXPECT_EQ(args.getInt("threads", 42), 42);
    EXPECT_DOUBLE_EQ(args.getDouble("x", 1.5), 1.5);
    EXPECT_EQ(args.get("name", "fallback"), "fallback");
    EXPECT_FALSE(args.has("anything"));
}

TEST(Cli, DoubleParsing)
{
    auto args = parse({"--ratio=0.25"});
    EXPECT_DOUBLE_EQ(args.getDouble("ratio", 0.0), 0.25);
}

TEST(Cli, NegativeIntegers)
{
    auto args = parse({"--offset=-3"});
    EXPECT_EQ(args.getInt("offset", 0), -3);
}

} // namespace
} // namespace splash
