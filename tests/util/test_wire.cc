/**
 * @file
 * Shared wire codec: escape/unescape round trips and the JSON string
 * escaper.  This codec frames both the executor's fork pipe and the
 * Sync-Scope ';'-delimited profile records, so a regression here
 * corrupts two layers at once.
 */

#include <gtest/gtest.h>

#include <string>

#include "util/wire.h"

namespace splash {
namespace {

TEST(Wire, EscapeMapsTheFramingCharacters)
{
    EXPECT_EQ(wire::escape("plain"), "plain");
    EXPECT_EQ(wire::escape("a\nb"), "a\\nb");
    EXPECT_EQ(wire::escape("a;b"), "a\\sb");
    EXPECT_EQ(wire::escape("a\\b"), "a\\\\b");
}

TEST(Wire, RoundTripsHostileStrings)
{
    const std::string hostile[] = {
        "",
        "plain",
        "line1\nline2\n",
        ";;;",
        "\\n is not a newline",
        "mix;of\\everything\nat;once\\",
        std::string("embedded\0nul", 12),
    };
    for (const std::string& s : hostile)
        EXPECT_EQ(wire::unescape(wire::escape(s)), s) << s;
}

TEST(Wire, UnescapeDegradesUnknownEscapes)
{
    // Forward compatibility: an unknown escape decodes to the escaped
    // character instead of corrupting the stream.
    EXPECT_EQ(wire::unescape("a\\qb"), "aqb");
    // A trailing lone backslash stays literal, not read out of bounds.
    EXPECT_EQ(wire::unescape("abc\\"), "abc\\");
}

TEST(Wire, EscapedTextContainsNoFramingCharacters)
{
    const std::string escaped =
        wire::escape("key=value;next\nrow");
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    EXPECT_EQ(escaped.find(';'), std::string::npos);
}

TEST(Wire, JsonEscapeHandlesQuotesAndControls)
{
    EXPECT_EQ(wire::jsonEscape("plain"), "plain");
    EXPECT_EQ(wire::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(wire::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(wire::jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(wire::jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(wire::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

} // namespace
} // namespace splash
