#include <gtest/gtest.h>

#include <cmath>

#include "util/stats_math.h"

namespace splash {
namespace {

TEST(StatsMath, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({-4.0, 4.0}), 0.0);
}

TEST(StatsMath, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 16.0}), 8.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 1.0, 8.0}), 2.0, 1e-12);
}

/**
 * Non-positive entries have no logarithm; they must be skipped (with
 * a warning) rather than poisoning the whole summary with NaN/-inf,
 * which used to leak into the report tables.
 */
TEST(StatsMath, GeomeanSkipsNonPositiveEntries)
{
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({-3.0, -1.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0, 0.0, 16.0}), 8.0);
    EXPECT_DOUBLE_EQ(geomean({4.0, -2.0, 16.0}), 8.0);
    EXPECT_FALSE(std::isnan(geomean({0.0, -1.0, 0.0})));
    EXPECT_FALSE(std::isinf(geomean({0.0})));
}

TEST(StatsMath, GeomeanBelowMeanForSpreadValues)
{
    const std::vector<double> v = {0.1, 1.0, 10.0};
    EXPECT_LT(geomean(v), mean(v));
}

TEST(StatsMath, StddevBasics)
{
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({2.0, 2.0, 2.0}), 0.0);
    EXPECT_NEAR(stddev({1.0, 3.0}), 1.0, 1e-12);
}

} // namespace
} // namespace splash
