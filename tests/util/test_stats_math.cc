#include <gtest/gtest.h>

#include "util/stats_math.h"

namespace splash {
namespace {

TEST(StatsMath, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({-4.0, 4.0}), 0.0);
}

TEST(StatsMath, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 16.0}), 8.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 1.0, 8.0}), 2.0, 1e-12);
}

TEST(StatsMath, GeomeanBelowMeanForSpreadValues)
{
    const std::vector<double> v = {0.1, 1.0, 10.0};
    EXPECT_LT(geomean(v), mean(v));
}

TEST(StatsMath, StddevBasics)
{
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({2.0, 2.0, 2.0}), 0.0);
    EXPECT_NEAR(stddev({1.0, 3.0}), 1.0, 1e-12);
}

} // namespace
} // namespace splash
