# Empty compiler generated dependencies file for table5_load_balance.
# This may be replaced when dependencies are built.
