file(REMOVE_RECURSE
  "CMakeFiles/table5_load_balance.dir/table5_load_balance.cc.o"
  "CMakeFiles/table5_load_balance.dir/table5_load_balance.cc.o.d"
  "table5_load_balance"
  "table5_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
