# Empty dependencies file for fig2_icelake64.
# This may be replaced when dependencies are built.
