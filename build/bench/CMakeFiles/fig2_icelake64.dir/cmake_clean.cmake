file(REMOVE_RECURSE
  "CMakeFiles/fig2_icelake64.dir/fig2_icelake64.cc.o"
  "CMakeFiles/fig2_icelake64.dir/fig2_icelake64.cc.o.d"
  "fig2_icelake64"
  "fig2_icelake64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_icelake64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
