file(REMOVE_RECURSE
  "CMakeFiles/table2_constructs.dir/table2_constructs.cc.o"
  "CMakeFiles/table2_constructs.dir/table2_constructs.cc.o.d"
  "table2_constructs"
  "table2_constructs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_constructs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
