# Empty dependencies file for table2_constructs.
# This may be replaced when dependencies are built.
