# Empty compiler generated dependencies file for fig1_epyc64.
# This may be replaced when dependencies are built.
