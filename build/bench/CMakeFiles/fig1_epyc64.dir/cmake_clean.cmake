file(REMOVE_RECURSE
  "CMakeFiles/fig1_epyc64.dir/fig1_epyc64.cc.o"
  "CMakeFiles/fig1_epyc64.dir/fig1_epyc64.cc.o.d"
  "fig1_epyc64"
  "fig1_epyc64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_epyc64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
