file(REMOVE_RECURSE
  "CMakeFiles/table4_coherence.dir/table4_coherence.cc.o"
  "CMakeFiles/table4_coherence.dir/table4_coherence.cc.o.d"
  "table4_coherence"
  "table4_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
