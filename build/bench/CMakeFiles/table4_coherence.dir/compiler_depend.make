# Empty compiler generated dependencies file for table4_coherence.
# This may be replaced when dependencies are built.
