# Empty compiler generated dependencies file for table1_inputs.
# This may be replaced when dependencies are built.
