file(REMOVE_RECURSE
  "CMakeFiles/table3_primitives.dir/table3_primitives.cc.o"
  "CMakeFiles/table3_primitives.dir/table3_primitives.cc.o.d"
  "table3_primitives"
  "table3_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
