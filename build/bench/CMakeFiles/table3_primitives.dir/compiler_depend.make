# Empty compiler generated dependencies file for table3_primitives.
# This may be replaced when dependencies are built.
