# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_headline[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
