file(REMOVE_RECURSE
  "CMakeFiles/test_kernels.dir/suite/test_cholesky.cc.o"
  "CMakeFiles/test_kernels.dir/suite/test_cholesky.cc.o.d"
  "CMakeFiles/test_kernels.dir/suite/test_fft.cc.o"
  "CMakeFiles/test_kernels.dir/suite/test_fft.cc.o.d"
  "CMakeFiles/test_kernels.dir/suite/test_lu.cc.o"
  "CMakeFiles/test_kernels.dir/suite/test_lu.cc.o.d"
  "CMakeFiles/test_kernels.dir/suite/test_radix.cc.o"
  "CMakeFiles/test_kernels.dir/suite/test_radix.cc.o.d"
  "test_kernels"
  "test_kernels.pdb"
  "test_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
