file(REMOVE_RECURSE
  "CMakeFiles/test_headline.dir/suite/test_headline.cc.o"
  "CMakeFiles/test_headline.dir/suite/test_headline.cc.o.d"
  "test_headline"
  "test_headline.pdb"
  "test_headline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
