
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/test_barrier_kinds.cc" "tests/CMakeFiles/test_engine.dir/engine/test_barrier_kinds.cc.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/test_barrier_kinds.cc.o.d"
  "/root/repo/tests/engine/test_cross_engine.cc" "tests/CMakeFiles/test_engine.dir/engine/test_cross_engine.cc.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/test_cross_engine.cc.o.d"
  "/root/repo/tests/engine/test_native_engine.cc" "tests/CMakeFiles/test_engine.dir/engine/test_native_engine.cc.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/test_native_engine.cc.o.d"
  "/root/repo/tests/engine/test_native_stats.cc" "tests/CMakeFiles/test_engine.dir/engine/test_native_stats.cc.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/test_native_stats.cc.o.d"
  "/root/repo/tests/engine/test_sim_determinism.cc" "tests/CMakeFiles/test_engine.dir/engine/test_sim_determinism.cc.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/test_sim_determinism.cc.o.d"
  "/root/repo/tests/engine/test_sim_edge.cc" "tests/CMakeFiles/test_engine.dir/engine/test_sim_edge.cc.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/test_sim_edge.cc.o.d"
  "/root/repo/tests/engine/test_sim_engine.cc" "tests/CMakeFiles/test_engine.dir/engine/test_sim_engine.cc.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/test_sim_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/splash_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/splash_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/splash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/splash_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/splash_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/splash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/splash_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/splash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
