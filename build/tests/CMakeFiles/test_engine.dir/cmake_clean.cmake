file(REMOVE_RECURSE
  "CMakeFiles/test_engine.dir/engine/test_barrier_kinds.cc.o"
  "CMakeFiles/test_engine.dir/engine/test_barrier_kinds.cc.o.d"
  "CMakeFiles/test_engine.dir/engine/test_cross_engine.cc.o"
  "CMakeFiles/test_engine.dir/engine/test_cross_engine.cc.o.d"
  "CMakeFiles/test_engine.dir/engine/test_native_engine.cc.o"
  "CMakeFiles/test_engine.dir/engine/test_native_engine.cc.o.d"
  "CMakeFiles/test_engine.dir/engine/test_native_stats.cc.o"
  "CMakeFiles/test_engine.dir/engine/test_native_stats.cc.o.d"
  "CMakeFiles/test_engine.dir/engine/test_sim_determinism.cc.o"
  "CMakeFiles/test_engine.dir/engine/test_sim_determinism.cc.o.d"
  "CMakeFiles/test_engine.dir/engine/test_sim_edge.cc.o"
  "CMakeFiles/test_engine.dir/engine/test_sim_edge.cc.o.d"
  "CMakeFiles/test_engine.dir/engine/test_sim_engine.cc.o"
  "CMakeFiles/test_engine.dir/engine/test_sim_engine.cc.o.d"
  "test_engine"
  "test_engine.pdb"
  "test_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
