file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/suite/test_barnes.cc.o"
  "CMakeFiles/test_apps.dir/suite/test_barnes.cc.o.d"
  "CMakeFiles/test_apps.dir/suite/test_fmm.cc.o"
  "CMakeFiles/test_apps.dir/suite/test_fmm.cc.o.d"
  "CMakeFiles/test_apps.dir/suite/test_md_common.cc.o"
  "CMakeFiles/test_apps.dir/suite/test_md_common.cc.o.d"
  "CMakeFiles/test_apps.dir/suite/test_ocean.cc.o"
  "CMakeFiles/test_apps.dir/suite/test_ocean.cc.o.d"
  "CMakeFiles/test_apps.dir/suite/test_radiosity.cc.o"
  "CMakeFiles/test_apps.dir/suite/test_radiosity.cc.o.d"
  "CMakeFiles/test_apps.dir/suite/test_raytrace.cc.o"
  "CMakeFiles/test_apps.dir/suite/test_raytrace.cc.o.d"
  "CMakeFiles/test_apps.dir/suite/test_verification.cc.o"
  "CMakeFiles/test_apps.dir/suite/test_verification.cc.o.d"
  "CMakeFiles/test_apps.dir/suite/test_volrend.cc.o"
  "CMakeFiles/test_apps.dir/suite/test_volrend.cc.o.d"
  "CMakeFiles/test_apps.dir/suite/test_water.cc.o"
  "CMakeFiles/test_apps.dir/suite/test_water.cc.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
