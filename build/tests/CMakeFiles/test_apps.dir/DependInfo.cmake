
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/suite/test_barnes.cc" "tests/CMakeFiles/test_apps.dir/suite/test_barnes.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/suite/test_barnes.cc.o.d"
  "/root/repo/tests/suite/test_fmm.cc" "tests/CMakeFiles/test_apps.dir/suite/test_fmm.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/suite/test_fmm.cc.o.d"
  "/root/repo/tests/suite/test_md_common.cc" "tests/CMakeFiles/test_apps.dir/suite/test_md_common.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/suite/test_md_common.cc.o.d"
  "/root/repo/tests/suite/test_ocean.cc" "tests/CMakeFiles/test_apps.dir/suite/test_ocean.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/suite/test_ocean.cc.o.d"
  "/root/repo/tests/suite/test_radiosity.cc" "tests/CMakeFiles/test_apps.dir/suite/test_radiosity.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/suite/test_radiosity.cc.o.d"
  "/root/repo/tests/suite/test_raytrace.cc" "tests/CMakeFiles/test_apps.dir/suite/test_raytrace.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/suite/test_raytrace.cc.o.d"
  "/root/repo/tests/suite/test_verification.cc" "tests/CMakeFiles/test_apps.dir/suite/test_verification.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/suite/test_verification.cc.o.d"
  "/root/repo/tests/suite/test_volrend.cc" "tests/CMakeFiles/test_apps.dir/suite/test_volrend.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/suite/test_volrend.cc.o.d"
  "/root/repo/tests/suite/test_water.cc" "tests/CMakeFiles/test_apps.dir/suite/test_water.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/suite/test_water.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/splash_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/splash_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/splash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/splash_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/splash_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/splash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/splash_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/splash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
