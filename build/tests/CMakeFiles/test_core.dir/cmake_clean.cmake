file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_params.cc.o"
  "CMakeFiles/test_core.dir/core/test_params.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_stats.cc.o"
  "CMakeFiles/test_core.dir/core/test_stats.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_world.cc.o"
  "CMakeFiles/test_core.dir/core/test_world.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
