# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--benchmark=radix" "--threads=4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_benchmark "/root/repo/build/examples/custom_benchmark")
set_tests_properties(example_custom_benchmark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_machine_sweep "/root/repo/build/examples/machine_sweep" "--benchmark=radix")
set_tests_properties(example_machine_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
