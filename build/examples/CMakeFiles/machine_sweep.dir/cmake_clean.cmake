file(REMOVE_RECURSE
  "CMakeFiles/machine_sweep.dir/machine_sweep.cc.o"
  "CMakeFiles/machine_sweep.dir/machine_sweep.cc.o.d"
  "machine_sweep"
  "machine_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
