# Empty dependencies file for machine_sweep.
# This may be replaced when dependencies are built.
