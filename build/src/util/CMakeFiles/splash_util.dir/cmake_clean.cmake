file(REMOVE_RECURSE
  "CMakeFiles/splash_util.dir/cli.cc.o"
  "CMakeFiles/splash_util.dir/cli.cc.o.d"
  "CMakeFiles/splash_util.dir/log.cc.o"
  "CMakeFiles/splash_util.dir/log.cc.o.d"
  "CMakeFiles/splash_util.dir/table.cc.o"
  "CMakeFiles/splash_util.dir/table.cc.o.d"
  "libsplash_util.a"
  "libsplash_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
