file(REMOVE_RECURSE
  "libsplash_util.a"
)
