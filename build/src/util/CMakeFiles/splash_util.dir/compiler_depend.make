# Empty compiler generated dependencies file for splash_util.
# This may be replaced when dependencies are built.
