
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/atomic_reduction.cc" "src/sync/CMakeFiles/splash_sync.dir/atomic_reduction.cc.o" "gcc" "src/sync/CMakeFiles/splash_sync.dir/atomic_reduction.cc.o.d"
  "/root/repo/src/sync/barrier.cc" "src/sync/CMakeFiles/splash_sync.dir/barrier.cc.o" "gcc" "src/sync/CMakeFiles/splash_sync.dir/barrier.cc.o.d"
  "/root/repo/src/sync/spinlock.cc" "src/sync/CMakeFiles/splash_sync.dir/spinlock.cc.o" "gcc" "src/sync/CMakeFiles/splash_sync.dir/spinlock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/splash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
