file(REMOVE_RECURSE
  "libsplash_sync.a"
)
