file(REMOVE_RECURSE
  "CMakeFiles/splash_sync.dir/atomic_reduction.cc.o"
  "CMakeFiles/splash_sync.dir/atomic_reduction.cc.o.d"
  "CMakeFiles/splash_sync.dir/barrier.cc.o"
  "CMakeFiles/splash_sync.dir/barrier.cc.o.d"
  "CMakeFiles/splash_sync.dir/spinlock.cc.o"
  "CMakeFiles/splash_sync.dir/spinlock.cc.o.d"
  "libsplash_sync.a"
  "libsplash_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
