# Empty dependencies file for splash_sync.
# This may be replaced when dependencies are built.
