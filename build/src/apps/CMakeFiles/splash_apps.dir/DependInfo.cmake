
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/barnes.cc" "src/apps/CMakeFiles/splash_apps.dir/barnes.cc.o" "gcc" "src/apps/CMakeFiles/splash_apps.dir/barnes.cc.o.d"
  "/root/repo/src/apps/fmm.cc" "src/apps/CMakeFiles/splash_apps.dir/fmm.cc.o" "gcc" "src/apps/CMakeFiles/splash_apps.dir/fmm.cc.o.d"
  "/root/repo/src/apps/ocean.cc" "src/apps/CMakeFiles/splash_apps.dir/ocean.cc.o" "gcc" "src/apps/CMakeFiles/splash_apps.dir/ocean.cc.o.d"
  "/root/repo/src/apps/radiosity.cc" "src/apps/CMakeFiles/splash_apps.dir/radiosity.cc.o" "gcc" "src/apps/CMakeFiles/splash_apps.dir/radiosity.cc.o.d"
  "/root/repo/src/apps/raytrace.cc" "src/apps/CMakeFiles/splash_apps.dir/raytrace.cc.o" "gcc" "src/apps/CMakeFiles/splash_apps.dir/raytrace.cc.o.d"
  "/root/repo/src/apps/volrend.cc" "src/apps/CMakeFiles/splash_apps.dir/volrend.cc.o" "gcc" "src/apps/CMakeFiles/splash_apps.dir/volrend.cc.o.d"
  "/root/repo/src/apps/water_nsquared.cc" "src/apps/CMakeFiles/splash_apps.dir/water_nsquared.cc.o" "gcc" "src/apps/CMakeFiles/splash_apps.dir/water_nsquared.cc.o.d"
  "/root/repo/src/apps/water_spatial.cc" "src/apps/CMakeFiles/splash_apps.dir/water_spatial.cc.o" "gcc" "src/apps/CMakeFiles/splash_apps.dir/water_spatial.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/splash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/splash_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/splash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
