file(REMOVE_RECURSE
  "libsplash_apps.a"
)
