# Empty compiler generated dependencies file for splash_apps.
# This may be replaced when dependencies are built.
