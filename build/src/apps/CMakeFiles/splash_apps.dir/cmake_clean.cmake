file(REMOVE_RECURSE
  "CMakeFiles/splash_apps.dir/barnes.cc.o"
  "CMakeFiles/splash_apps.dir/barnes.cc.o.d"
  "CMakeFiles/splash_apps.dir/fmm.cc.o"
  "CMakeFiles/splash_apps.dir/fmm.cc.o.d"
  "CMakeFiles/splash_apps.dir/ocean.cc.o"
  "CMakeFiles/splash_apps.dir/ocean.cc.o.d"
  "CMakeFiles/splash_apps.dir/radiosity.cc.o"
  "CMakeFiles/splash_apps.dir/radiosity.cc.o.d"
  "CMakeFiles/splash_apps.dir/raytrace.cc.o"
  "CMakeFiles/splash_apps.dir/raytrace.cc.o.d"
  "CMakeFiles/splash_apps.dir/volrend.cc.o"
  "CMakeFiles/splash_apps.dir/volrend.cc.o.d"
  "CMakeFiles/splash_apps.dir/water_nsquared.cc.o"
  "CMakeFiles/splash_apps.dir/water_nsquared.cc.o.d"
  "CMakeFiles/splash_apps.dir/water_spatial.cc.o"
  "CMakeFiles/splash_apps.dir/water_spatial.cc.o.d"
  "libsplash_apps.a"
  "libsplash_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
