file(REMOVE_RECURSE
  "libsplash_core.a"
)
