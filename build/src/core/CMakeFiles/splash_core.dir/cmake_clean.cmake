file(REMOVE_RECURSE
  "CMakeFiles/splash_core.dir/benchmark.cc.o"
  "CMakeFiles/splash_core.dir/benchmark.cc.o.d"
  "CMakeFiles/splash_core.dir/params.cc.o"
  "CMakeFiles/splash_core.dir/params.cc.o.d"
  "CMakeFiles/splash_core.dir/stats.cc.o"
  "CMakeFiles/splash_core.dir/stats.cc.o.d"
  "CMakeFiles/splash_core.dir/types.cc.o"
  "CMakeFiles/splash_core.dir/types.cc.o.d"
  "CMakeFiles/splash_core.dir/world.cc.o"
  "CMakeFiles/splash_core.dir/world.cc.o.d"
  "libsplash_core.a"
  "libsplash_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
