
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/benchmark.cc" "src/core/CMakeFiles/splash_core.dir/benchmark.cc.o" "gcc" "src/core/CMakeFiles/splash_core.dir/benchmark.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/splash_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/splash_core.dir/params.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/splash_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/splash_core.dir/stats.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/splash_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/splash_core.dir/types.cc.o.d"
  "/root/repo/src/core/world.cc" "src/core/CMakeFiles/splash_core.dir/world.cc.o" "gcc" "src/core/CMakeFiles/splash_core.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/splash_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/splash_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
