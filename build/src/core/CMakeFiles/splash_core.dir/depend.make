# Empty dependencies file for splash_core.
# This may be replaced when dependencies are built.
