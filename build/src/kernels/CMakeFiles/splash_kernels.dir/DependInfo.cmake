
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/cholesky.cc" "src/kernels/CMakeFiles/splash_kernels.dir/cholesky.cc.o" "gcc" "src/kernels/CMakeFiles/splash_kernels.dir/cholesky.cc.o.d"
  "/root/repo/src/kernels/fft.cc" "src/kernels/CMakeFiles/splash_kernels.dir/fft.cc.o" "gcc" "src/kernels/CMakeFiles/splash_kernels.dir/fft.cc.o.d"
  "/root/repo/src/kernels/lu.cc" "src/kernels/CMakeFiles/splash_kernels.dir/lu.cc.o" "gcc" "src/kernels/CMakeFiles/splash_kernels.dir/lu.cc.o.d"
  "/root/repo/src/kernels/radix.cc" "src/kernels/CMakeFiles/splash_kernels.dir/radix.cc.o" "gcc" "src/kernels/CMakeFiles/splash_kernels.dir/radix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/splash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/splash_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/splash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
