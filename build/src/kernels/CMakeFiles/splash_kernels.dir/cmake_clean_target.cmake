file(REMOVE_RECURSE
  "libsplash_kernels.a"
)
