# Empty dependencies file for splash_kernels.
# This may be replaced when dependencies are built.
