file(REMOVE_RECURSE
  "CMakeFiles/splash_kernels.dir/cholesky.cc.o"
  "CMakeFiles/splash_kernels.dir/cholesky.cc.o.d"
  "CMakeFiles/splash_kernels.dir/fft.cc.o"
  "CMakeFiles/splash_kernels.dir/fft.cc.o.d"
  "CMakeFiles/splash_kernels.dir/lu.cc.o"
  "CMakeFiles/splash_kernels.dir/lu.cc.o.d"
  "CMakeFiles/splash_kernels.dir/radix.cc.o"
  "CMakeFiles/splash_kernels.dir/radix.cc.o.d"
  "libsplash_kernels.a"
  "libsplash_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
