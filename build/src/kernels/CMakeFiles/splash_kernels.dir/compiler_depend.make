# Empty compiler generated dependencies file for splash_kernels.
# This may be replaced when dependencies are built.
