file(REMOVE_RECURSE
  "libsplash_harness.a"
)
