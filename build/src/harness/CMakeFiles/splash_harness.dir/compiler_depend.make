# Empty compiler generated dependencies file for splash_harness.
# This may be replaced when dependencies are built.
