file(REMOVE_RECURSE
  "CMakeFiles/splash_harness.dir/presets.cc.o"
  "CMakeFiles/splash_harness.dir/presets.cc.o.d"
  "CMakeFiles/splash_harness.dir/report.cc.o"
  "CMakeFiles/splash_harness.dir/report.cc.o.d"
  "CMakeFiles/splash_harness.dir/suite.cc.o"
  "CMakeFiles/splash_harness.dir/suite.cc.o.d"
  "libsplash_harness.a"
  "libsplash_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
