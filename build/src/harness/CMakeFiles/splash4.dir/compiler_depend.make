# Empty compiler generated dependencies file for splash4.
# This may be replaced when dependencies are built.
