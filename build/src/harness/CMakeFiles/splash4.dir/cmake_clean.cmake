file(REMOVE_RECURSE
  "CMakeFiles/splash4.dir/main.cc.o"
  "CMakeFiles/splash4.dir/main.cc.o.d"
  "splash4"
  "splash4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
