file(REMOVE_RECURSE
  "CMakeFiles/splash_engine.dir/native_engine.cc.o"
  "CMakeFiles/splash_engine.dir/native_engine.cc.o.d"
  "CMakeFiles/splash_engine.dir/runner.cc.o"
  "CMakeFiles/splash_engine.dir/runner.cc.o.d"
  "CMakeFiles/splash_engine.dir/sim_engine.cc.o"
  "CMakeFiles/splash_engine.dir/sim_engine.cc.o.d"
  "libsplash_engine.a"
  "libsplash_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
