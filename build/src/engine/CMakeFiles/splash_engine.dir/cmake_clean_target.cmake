file(REMOVE_RECURSE
  "libsplash_engine.a"
)
