# Empty compiler generated dependencies file for splash_engine.
# This may be replaced when dependencies are built.
