file(REMOVE_RECURSE
  "libsplash_sim.a"
)
