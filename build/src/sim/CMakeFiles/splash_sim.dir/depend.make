# Empty dependencies file for splash_sim.
# This may be replaced when dependencies are built.
