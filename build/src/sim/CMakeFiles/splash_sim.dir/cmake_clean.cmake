file(REMOVE_RECURSE
  "CMakeFiles/splash_sim.dir/machine.cc.o"
  "CMakeFiles/splash_sim.dir/machine.cc.o.d"
  "libsplash_sim.a"
  "libsplash_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
